"""Unit tests for the min+1 BFS spanning-tree baseline (Huang & Chen)."""

from __future__ import annotations

import random

import pytest

from repro.core import (
    CentralDaemon,
    DistributedDaemon,
    Simulator,
    SynchronousDaemon,
    measure_stabilization,
)
from repro.exceptions import ProtocolError, SpecificationError
from repro.graphs import diameter, grid_graph, path_graph, random_connected_graph, star_graph
from repro.baselines import BfsSpanningTree, BfsTreeSpec
from repro.mutex import DijkstraTokenRing


class TestConstruction:
    def test_default_root(self):
        protocol = BfsSpanningTree(path_graph(5))
        assert protocol.root == 0
        assert protocol.max_level == 5

    def test_explicit_root(self):
        protocol = BfsSpanningTree(path_graph(5), root=2)
        assert protocol.root == 2
        assert protocol.true_levels()[0] == 2

    def test_unknown_root(self):
        with pytest.raises(ProtocolError):
            BfsSpanningTree(path_graph(3), root=9)

    def test_state_validation(self):
        protocol = BfsSpanningTree(path_graph(3))
        with pytest.raises(ProtocolError):
            protocol.validate_state(0, -1)
        with pytest.raises(ProtocolError):
            protocol.validate_state(0, 99)

    def test_spec_requires_bfs_protocol(self):
        with pytest.raises(SpecificationError):
            BfsTreeSpec(DijkstraTokenRing.on_ring(4))


class TestRules:
    def test_root_rule(self):
        protocol = BfsSpanningTree(path_graph(3))
        gamma = protocol.configuration({0: 2, 1: 1, 2: 2})
        rules = protocol.enabled_rules(gamma, 0)
        assert [r.name for r in rules] == ["R0"]
        gamma2, _ = protocol.apply(gamma, [0])
        assert gamma2[0] == 0

    def test_min_plus_one_rule(self):
        protocol = BfsSpanningTree(path_graph(3))
        gamma = protocol.configuration({0: 0, 1: 3, 2: 3})
        gamma2, records = protocol.apply(gamma, [1])
        assert gamma2[1] == 1
        assert records[0].rule_name == "M1"

    def test_levels_are_clamped(self):
        protocol = BfsSpanningTree(path_graph(3))
        gamma = protocol.configuration({0: 3, 1: 3, 2: 3})
        gamma2, _ = protocol.apply(gamma, [2])
        assert gamma2[2] == protocol.max_level - 1 + 1  # min(3,3)+1 clamped within domain
        assert gamma2[2] <= protocol.max_level


class TestLegitimacy:
    def test_true_levels_are_legitimate_and_terminal(self):
        graph = grid_graph(3, 3)
        protocol = BfsSpanningTree(graph)
        spec = BfsTreeSpec(protocol)
        gamma = protocol.configuration(protocol.true_levels())
        assert spec.is_safe(gamma, protocol)
        assert protocol.is_terminal(gamma)

    def test_wrong_levels_are_not_legitimate(self):
        protocol = BfsSpanningTree(path_graph(4))
        spec = BfsTreeSpec(protocol)
        gamma = protocol.configuration({0: 0, 1: 1, 2: 2, 3: 2})
        assert not spec.is_safe(gamma, protocol)

    def test_parents_of_correct_levels_form_a_tree(self):
        graph = grid_graph(3, 3)
        protocol = BfsSpanningTree(graph)
        gamma = protocol.configuration(protocol.true_levels())
        parents = protocol.parents(gamma)
        assert parents[protocol.root] is None
        for vertex, parent in parents.items():
            if vertex == protocol.root:
                continue
            assert parent is not None
            assert graph.has_edge(vertex, parent)
            assert gamma[parent] == gamma[vertex] - 1

    def test_parents_with_inconsistent_levels(self):
        protocol = BfsSpanningTree(path_graph(3))
        gamma = protocol.configuration({0: 0, 1: 3, 2: 1})
        parents = protocol.parents(gamma)
        assert parents[1] is None


class TestConvergence:
    @pytest.mark.parametrize(
        "graph",
        [path_graph(7), star_graph(6), grid_graph(3, 3), random_connected_graph(10, 0.2, random.Random(1))],
        ids=["path7", "star6", "grid3x3", "random10"],
    )
    @pytest.mark.parametrize(
        "daemon_factory", [SynchronousDaemon, CentralDaemon, lambda: DistributedDaemon(0.5)],
        ids=["sd", "cd", "dd"],
    )
    def test_converges_to_bfs_distances(self, graph, daemon_factory, rng):
        protocol = BfsSpanningTree(graph)
        spec = BfsTreeSpec(protocol)
        truth = protocol.true_levels()
        for _ in range(3):
            gamma = protocol.random_configuration(rng)
            simulator = Simulator(protocol, daemon_factory(), rng=random.Random(rng.randrange(2**32)))
            execution = simulator.run_until_terminal(gamma, max_steps=20 * graph.n * graph.n + 100)
            assert dict(execution.final) == truth
            assert spec.is_safe(execution.final, protocol)

    def test_synchronous_convergence_is_about_diameter(self, rng):
        """The Section 3 claim: Theta(diam) synchronous steps."""
        graph = path_graph(12)
        protocol = BfsSpanningTree(graph)
        spec = BfsTreeSpec(protocol)
        diam = diameter(graph)
        worst = 0
        for _ in range(5):
            gamma = protocol.random_configuration(rng)
            measurement = measure_stabilization(
                protocol, SynchronousDaemon(), gamma, spec, horizon=4 * graph.n
            )
            assert measurement.stabilized
            worst = max(worst, measurement.stabilization_steps)
        assert worst <= 2 * diam + 2
