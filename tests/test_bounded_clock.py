"""Unit tests for the bounded clock cherry(alpha, K) of Figure 1."""

from __future__ import annotations

import pytest

from repro.clocks import BoundedClock
from repro.exceptions import ClockError


@pytest.fixture
def figure1_clock() -> BoundedClock:
    """The clock of Figure 1: cherry(5, 12)."""
    return BoundedClock(alpha=5, K=12)


class TestConstruction:
    def test_parameters(self, figure1_clock):
        assert figure1_clock.alpha == 5
        assert figure1_clock.K == 12
        assert figure1_clock.size == 17

    def test_invalid_alpha(self):
        with pytest.raises(ClockError):
            BoundedClock(alpha=0, K=5)

    def test_invalid_K(self):
        with pytest.raises(ClockError):
            BoundedClock(alpha=3, K=1)

    def test_equality_and_hash(self):
        assert BoundedClock(2, 5) == BoundedClock(2, 5)
        assert BoundedClock(2, 5) != BoundedClock(2, 6)
        assert hash(BoundedClock(2, 5)) == hash(BoundedClock(2, 5))

    def test_repr(self, figure1_clock):
        assert "alpha=5" in repr(figure1_clock)
        assert "K=12" in repr(figure1_clock)


class TestDomains:
    def test_values(self, figure1_clock):
        values = list(figure1_clock.values())
        assert values[0] == -5
        assert values[-1] == 11
        assert len(values) == 17

    def test_initial_and_correct_sets(self, figure1_clock):
        assert figure1_clock.initial_values() == frozenset(range(-5, 1))
        assert figure1_clock.strict_initial_values() == frozenset(range(-5, 0))
        assert figure1_clock.correct_values() == frozenset(range(12))
        assert figure1_clock.strict_correct_values() == frozenset(range(1, 12))

    def test_zero_is_both_initial_and_correct(self, figure1_clock):
        assert figure1_clock.is_initial(0)
        assert figure1_clock.is_correct(0)

    def test_membership(self, figure1_clock):
        assert figure1_clock.contains(-5)
        assert figure1_clock.contains(11)
        assert not figure1_clock.contains(-6)
        assert not figure1_clock.contains(12)
        assert 3 in figure1_clock
        assert 12 not in figure1_clock
        assert "x" not in figure1_clock

    def test_check_raises(self, figure1_clock):
        with pytest.raises(ClockError):
            figure1_clock.check(99)


class TestPhi:
    def test_phi_on_tail(self, figure1_clock):
        assert figure1_clock.phi(-5) == -4
        assert figure1_clock.phi(-1) == 0

    def test_phi_on_cycle(self, figure1_clock):
        assert figure1_clock.phi(0) == 1
        assert figure1_clock.phi(11) == 0

    def test_phi_rejects_outside_domain(self, figure1_clock):
        with pytest.raises(ClockError):
            figure1_clock.phi(12)

    def test_increment_multiple(self, figure1_clock):
        assert figure1_clock.increment(-5, 5) == 0
        assert figure1_clock.increment(10, 3) == 1

    def test_increment_negative_times(self, figure1_clock):
        with pytest.raises(ClockError):
            figure1_clock.increment(0, -1)

    def test_trajectory(self, figure1_clock):
        assert figure1_clock.trajectory(-2, 4) == [-2, -1, 0, 1, 2]

    def test_trajectory_negative_length(self, figure1_clock):
        with pytest.raises(ClockError):
            figure1_clock.trajectory(0, -1)

    def test_steps_to_reach(self, figure1_clock):
        assert figure1_clock.steps_to_reach(-5, 0) == 5
        assert figure1_clock.steps_to_reach(0, 0) == 0
        assert figure1_clock.steps_to_reach(3, 2) == 11

    def test_initial_values_unreachable_from_cycle(self, figure1_clock):
        with pytest.raises(ClockError):
            figure1_clock.steps_to_reach(0, -3)


class TestReset:
    def test_reset_value(self, figure1_clock):
        assert figure1_clock.reset_value() == -5

    def test_reset(self, figure1_clock):
        assert figure1_clock.reset(7) == -5
        assert figure1_clock.reset(-2) == -5


class TestDistanceAndOrders:
    def test_canonical(self, figure1_clock):
        assert figure1_clock.canonical(-1) == 11
        assert figure1_clock.canonical(5) == 5

    def test_distance_symmetric(self, figure1_clock):
        assert figure1_clock.distance(1, 11) == 2
        assert figure1_clock.distance(11, 1) == 2
        assert figure1_clock.distance(0, 6) == 6

    def test_distance_max_is_half_K(self, figure1_clock):
        assert max(figure1_clock.distance(0, c) for c in range(12)) == 6

    def test_locally_comparable(self, figure1_clock):
        assert figure1_clock.locally_comparable(3, 4)
        assert figure1_clock.locally_comparable(0, 11)
        assert not figure1_clock.locally_comparable(3, 5)

    def test_local_le(self, figure1_clock):
        assert figure1_clock.local_le(3, 3)
        assert figure1_clock.local_le(3, 4)
        assert not figure1_clock.local_le(4, 3)
        assert figure1_clock.local_le(11, 0)  # wrap-around successor
        assert not figure1_clock.local_le(0, 11)
