"""Tests for the ``python -m repro.experiments`` command-line entry point."""

from __future__ import annotations

import pytest

from repro.experiments.__main__ import main


class TestCli:
    def test_single_experiment(self, capsys):
        exit_code = main(["E1"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "[E1]" in captured.out
        assert "verdict: PASS" in captured.out

    def test_write_markdown(self, tmp_path, capsys):
        target = tmp_path / "report.md"
        exit_code = main(["E1", "--write", str(target)])
        assert exit_code == 0
        text = target.read_text(encoding="utf-8")
        assert "# EXPERIMENTS" in text
        assert "### E1" in text
        assert "PASS" in text

    def test_unknown_experiment_is_rejected(self):
        with pytest.raises(SystemExit):
            main(["E99"])
