"""Tests for the ``python -m repro.experiments`` command-line entry point."""

from __future__ import annotations

import pytest

from repro.experiments.__main__ import main


class TestCli:
    def test_single_experiment(self, capsys):
        exit_code = main(["E1"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "[E1]" in captured.out
        assert "verdict: PASS" in captured.out

    def test_write_markdown(self, tmp_path, capsys):
        target = tmp_path / "report.md"
        exit_code = main(["E1", "--write", str(target)])
        assert exit_code == 0
        text = target.read_text(encoding="utf-8")
        assert "# EXPERIMENTS" in text
        assert "### E1" in text
        assert "PASS" in text

    def test_unknown_experiment_is_rejected(self):
        with pytest.raises(SystemExit):
            main(["E99"])

    def test_cache_flag_populates_and_reuses_cache(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        assert main(["E8", "--cache", str(cache)]) == 0
        assert (cache / "results").is_dir()
        first = capsys.readouterr().out
        assert main(["E8", "--cache", str(cache)]) == 0
        second = capsys.readouterr().out
        assert second == first

    def test_no_cache_flag_writes_nothing(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        assert main(["E8", "--no-cache"]) == 0
        assert not (tmp_path / ".repro-cache").exists()

    def test_refresh_flag_accepted(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        assert main(["E8", "--cache", str(cache)]) == 0
        assert main(["E8", "--cache", str(cache), "--refresh"]) == 0

    def test_progress_flag_streams_to_stderr(self, tmp_path, capsys):
        assert main(["E8", "--cache", str(tmp_path / "c"), "--progress"]) == 0
        captured = capsys.readouterr()
        assert "computed" in captured.err


class TestJobsCli:
    def test_list_empty_cache(self, tmp_path, capsys):
        assert main(["jobs", "list", "--cache", str(tmp_path)]) == 0
        assert "0 cached result(s)" in capsys.readouterr().out

    def test_status_empty_cache(self, tmp_path, capsys):
        assert main(["jobs", "status", "--cache", str(tmp_path)]) == 0
        assert "no sweep journals" in capsys.readouterr().out

    def test_list_status_clear_after_a_run(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert main(["E8", "--cache", cache]) == 0
        capsys.readouterr()

        assert main(["jobs", "list", "--cache", cache]) == 0
        listing = capsys.readouterr().out
        assert "0 cached result(s)" not in listing
        assert "runner=" in listing

        assert main(["jobs", "status", "--cache", cache]) == 0
        status = capsys.readouterr().out
        assert "[complete]" in status

        assert main(["jobs", "clear-cache", "--cache", cache]) == 0
        assert "cleared" in capsys.readouterr().out
        assert main(["jobs", "list", "--cache", cache]) == 0
        assert "0 cached result(s)" in capsys.readouterr().out

    def test_unknown_action_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["jobs", "frobnicate"])
