"""Unit tests for the clock analysis helpers (Figure 1 support)."""

from __future__ import annotations

from repro.clocks import (
    BoundedClock,
    all_within_drift,
    clock_description,
    drift,
    max_pairwise_drift,
    phi_orbit_partition,
    render_cherry_ascii,
)


class TestDrift:
    def test_drift_empty(self):
        assert drift(BoundedClock(2, 8), []) == 0

    def test_drift_values(self):
        clock = BoundedClock(2, 8)
        assert drift(clock, [0, 1, 7]) == 1
        assert drift(clock, [4]) == 4

    def test_max_pairwise_drift(self):
        clock = BoundedClock(2, 10)
        assert max_pairwise_drift(clock, [0, 1, 2]) == 2
        assert max_pairwise_drift(clock, [0, 9]) == 1
        assert max_pairwise_drift(clock, [5]) == 0

    def test_all_within_drift(self):
        clock = BoundedClock(2, 10)
        assert all_within_drift(clock, [4, 5], 1)
        assert all_within_drift(clock, [0, 1, 9], 2)
        assert not all_within_drift(clock, [0, 1, 9], 1)
        assert not all_within_drift(clock, [0, 3], 2)


class TestDescriptions:
    def test_clock_description(self):
        description = clock_description(BoundedClock(5, 12))
        assert description["alpha"] == 5
        assert description["K"] == 12
        assert description["size"] == 17
        assert description["reset_value"] == -5
        assert description["initial_values"] == list(range(-5, 1))

    def test_render_cherry_contains_key_values(self):
        text = render_cherry_ascii(BoundedClock(5, 12))
        assert "cherry(alpha=5, K=12)" in text
        assert "-5" in text
        assert "11" in text

    def test_render_cherry_elides_long_cycles(self):
        text = render_cherry_ascii(BoundedClock(3, 100), max_cycle_values=10)
        assert "..." in text

    def test_phi_orbit_partition(self):
        transient, recurrent = phi_orbit_partition(BoundedClock(3, 6))
        assert transient == [-3, -2, -1]
        assert recurrent == [0, 1, 2, 3, 4, 5]
