"""Property-based tests for the bounded clock (hypothesis)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clocks import BoundedClock

clock_params = st.tuples(st.integers(1, 20), st.integers(2, 60))


def clock_and_value():
    """Strategy: a clock together with a value of its domain."""
    return clock_params.flatmap(
        lambda params: st.tuples(
            st.just(BoundedClock(alpha=params[0], K=params[1])),
            st.integers(-params[0], params[1] - 1),
        )
    )


def clock_and_two_values():
    return clock_params.flatmap(
        lambda params: st.tuples(
            st.just(BoundedClock(alpha=params[0], K=params[1])),
            st.integers(-params[0], params[1] - 1),
            st.integers(-params[0], params[1] - 1),
        )
    )


@given(clock_and_value())
def test_phi_stays_in_domain(data):
    clock, value = data
    assert clock.contains(clock.phi(value))


@given(clock_and_value())
def test_phi_leaves_the_initial_tail_monotonically(data):
    clock, value = data
    successor = clock.phi(value)
    if clock.is_strict_initial(value):
        assert successor == value + 1
    else:
        assert clock.is_correct(successor)


@given(clock_and_value())
def test_reset_always_lands_on_minus_alpha(data):
    clock, value = data
    assert clock.reset(value) == -clock.alpha


@given(clock_and_value())
def test_cycle_has_period_K(data):
    clock, value = data
    if clock.is_correct(value):
        assert clock.increment(value, clock.K) == value


@given(clock_and_value())
def test_every_value_eventually_reaches_zero(data):
    clock, value = data
    steps = clock.steps_to_reach(value, 0)
    assert 0 <= steps <= clock.alpha + clock.K


@given(clock_and_two_values())
def test_distance_is_a_metric_on_representatives(data):
    clock, a, b = data
    dab = clock.distance(a, b)
    assert 0 <= dab <= clock.K // 2
    assert dab == clock.distance(b, a)
    assert clock.distance(a, a) == 0
    if dab == 0:
        assert clock.canonical(a) == clock.canonical(b)


@given(clock_and_two_values(), st.integers(-20, 59))
def test_triangle_inequality(data, c_raw):
    clock, a, b = data
    c = max(-clock.alpha, min(clock.K - 1, c_raw))
    assert clock.distance(a, b) <= clock.distance(a, c) + clock.distance(c, b)


@given(clock_and_two_values())
def test_local_le_matches_definition(data):
    clock, a, b = data
    expected = (clock.canonical(b) - clock.canonical(a)) % clock.K <= 1
    assert clock.local_le(a, b) == expected


@given(clock_and_two_values())
def test_locally_comparable_iff_le_in_one_direction(data):
    clock, a, b = data
    comparable = clock.locally_comparable(a, b)
    assert comparable == (clock.local_le(a, b) or clock.local_le(b, a))
