"""Unit tests for Configuration."""

from __future__ import annotations

import pytest

from repro.core import Configuration
from repro.exceptions import SimulationError


class TestMappingInterface:
    def test_getitem(self):
        gamma = Configuration({0: 5, 1: -2})
        assert gamma[0] == 5
        assert gamma[1] == -2

    def test_missing_vertex(self):
        gamma = Configuration({0: 5})
        with pytest.raises(SimulationError):
            gamma[3]

    def test_len_iter_contains(self):
        gamma = Configuration({0: 1, 1: 2, 2: 3})
        assert len(gamma) == 3
        assert set(gamma) == {0, 1, 2}
        assert 1 in gamma
        assert 9 not in gamma

    def test_equality_with_configuration_and_dict(self):
        gamma = Configuration({0: 1, 1: 2})
        assert gamma == Configuration({1: 2, 0: 1})
        assert gamma == {0: 1, 1: 2}
        assert gamma != Configuration({0: 1, 1: 3})
        assert gamma != 42

    def test_hashable(self):
        gamma = Configuration({0: 1})
        gamma2 = Configuration({0: 1})
        assert hash(gamma) == hash(gamma2)
        assert len({gamma, gamma2}) == 1

    def test_repr_is_deterministic(self):
        assert repr(Configuration({1: "a", 0: "b"})) == repr(Configuration({0: "b", 1: "a"}))

    def test_as_dict_is_a_copy(self):
        gamma = Configuration({0: 1})
        d = gamma.as_dict()
        d[0] = 99
        assert gamma[0] == 1


class TestFunctionalUpdates:
    def test_updated_returns_new_configuration(self):
        gamma = Configuration({0: 1, 1: 2})
        gamma2 = gamma.updated({0: 7})
        assert gamma2[0] == 7
        assert gamma2[1] == 2
        assert gamma[0] == 1

    def test_updated_unknown_vertex(self):
        with pytest.raises(SimulationError):
            Configuration({0: 1}).updated({5: 3})

    def test_restrict(self):
        gamma = Configuration({0: 1, 1: 2, 2: 3})
        sub = gamma.restrict([0, 2])
        assert set(sub) == {0, 2}
        assert sub[2] == 3

    def test_restrict_unknown_vertex(self):
        with pytest.raises(SimulationError):
            Configuration({0: 1}).restrict([0, 9])

    def test_differing_vertices(self):
        a = Configuration({0: 1, 1: 2, 2: 3})
        b = Configuration({0: 1, 1: 5, 2: 6})
        assert set(a.differing_vertices(b)) == {1, 2}

    def test_differing_vertices_mismatched_domains(self):
        with pytest.raises(SimulationError):
            Configuration({0: 1}).differing_vertices(Configuration({1: 1}))
