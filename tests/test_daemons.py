"""Unit tests for daemons (Definition 1) and their partial order (Definition 2)."""

from __future__ import annotations

import random

import pytest

from repro.core import (
    AdversarialCentralDaemon,
    CentralDaemon,
    DistributedDaemon,
    LocallyCentralDaemon,
    RoundRobinCentralDaemon,
    StarvationDaemon,
    SynchronousDaemon,
    is_weaker_than,
    make_daemon,
)
from repro.exceptions import DaemonError
from repro.graphs import ring_graph
from repro.unison import AsynchronousUnison


@pytest.fixture
def protocol():
    return AsynchronousUnison(ring_graph(5))


@pytest.fixture
def configuration(protocol):
    return protocol.random_configuration(random.Random(0))


def _select(daemon, protocol, configuration, seed=0):
    daemon.bind(protocol)
    enabled = protocol.enabled_vertices(configuration)
    return enabled, daemon.checked_select(enabled, configuration, 0, random.Random(seed))


class TestSynchronousDaemon:
    def test_selects_all_enabled(self, protocol, configuration):
        enabled, selection = _select(SynchronousDaemon(), protocol, configuration)
        assert selection == enabled

    def test_admits_only_full_selection(self):
        daemon = SynchronousDaemon()
        enabled = frozenset({0, 1, 2})
        assert daemon.admits_selection(enabled, enabled)
        assert not daemon.admits_selection(enabled, frozenset({0}))


class TestCentralDaemon:
    def test_selects_exactly_one(self, protocol, configuration):
        enabled, selection = _select(CentralDaemon(), protocol, configuration)
        assert len(selection) == 1
        assert selection <= enabled

    def test_first_and_last_strategies(self, protocol, configuration):
        enabled, first = _select(CentralDaemon("first"), protocol, configuration)
        _, last = _select(CentralDaemon("last"), protocol, configuration)
        assert next(iter(first)) == min(enabled)
        assert next(iter(last)) == max(enabled)

    def test_unknown_strategy(self):
        with pytest.raises(DaemonError):
            CentralDaemon("weird")

    def test_admits_only_singletons(self):
        daemon = CentralDaemon()
        enabled = frozenset({0, 1})
        assert daemon.admits_selection(enabled, frozenset({0}))
        assert not daemon.admits_selection(enabled, enabled)


class TestRoundRobin:
    def test_cycles_through_vertices(self, protocol):
        daemon = RoundRobinCentralDaemon()
        daemon.bind(protocol)
        gamma = protocol.legitimate_configuration(0)
        selected = []
        rng = random.Random(0)
        current = gamma
        for step in range(protocol.graph.n):
            enabled = protocol.enabled_vertices(current)
            selection = daemon.checked_select(enabled, current, step, rng)
            selected.append(next(iter(selection)))
            current, _ = protocol.apply(current, selection)
        # Every vertex of the ring is served once in the first n selections.
        assert sorted(selected) == sorted(protocol.graph.vertices)


class TestDistributedDaemon:
    def test_nonempty_subset(self, protocol, configuration):
        enabled, selection = _select(DistributedDaemon(0.4), protocol, configuration)
        assert selection
        assert selection <= enabled

    def test_probability_validation(self):
        with pytest.raises(DaemonError):
            DistributedDaemon(0.0)
        with pytest.raises(DaemonError):
            DistributedDaemon(1.5)

    def test_admits_any_nonempty_subset(self):
        daemon = DistributedDaemon()
        enabled = frozenset({0, 1, 2})
        assert daemon.admits_selection(enabled, frozenset({1, 2}))
        assert not daemon.admits_selection(enabled, frozenset())


class TestLocallyCentralDaemon:
    def test_never_selects_neighbors(self, protocol, configuration):
        daemon = LocallyCentralDaemon()
        daemon.bind(protocol)
        enabled = protocol.enabled_vertices(configuration)
        for seed in range(10):
            selection = daemon.checked_select(enabled, configuration, 0, random.Random(seed))
            for u in selection:
                for v in selection:
                    if u != v:
                        assert not protocol.graph.has_edge(u, v)

    def test_requires_bound_protocol(self, configuration):
        daemon = LocallyCentralDaemon()
        with pytest.raises(DaemonError):
            daemon.select(frozenset({0}), configuration, 0, random.Random(0))


class TestAdversarialDaemons:
    def test_adversarial_central_selects_one_enabled(self, protocol, configuration):
        enabled, selection = _select(AdversarialCentralDaemon(), protocol, configuration)
        assert len(selection) == 1
        assert selection <= enabled

    def test_starvation_daemon_avoids_target(self, protocol, configuration):
        daemon = StarvationDaemon(target=0)
        daemon.bind(protocol)
        enabled = protocol.enabled_vertices(configuration)
        selection = daemon.checked_select(enabled, configuration, 0, random.Random(0))
        if enabled != frozenset({0}):
            assert 0 not in selection

    def test_starvation_daemon_activates_target_when_alone(self, protocol):
        daemon = StarvationDaemon(target=0)
        daemon.bind(protocol)
        gamma = protocol.random_configuration(random.Random(1))
        selection = daemon.select(frozenset({0}), gamma, 0, random.Random(0))
        assert selection == frozenset({0})


class TestCheckedSelect:
    def test_empty_enabled_rejected(self, protocol, configuration):
        daemon = SynchronousDaemon()
        with pytest.raises(DaemonError):
            daemon.checked_select(frozenset(), configuration, 0, random.Random(0))

    def test_illegal_daemon_is_caught(self, protocol, configuration):
        class BadDaemon(SynchronousDaemon):
            def select(self, enabled, configuration, step_index, rng):
                return frozenset({"not-a-vertex"})

        daemon = BadDaemon()
        with pytest.raises(DaemonError):
            daemon.checked_select(frozenset({0}), configuration, 0, random.Random(0))


class TestPartialOrder:
    def test_synchronous_weaker_than_distributed(self):
        ground = [frozenset({0, 1}), frozenset({0, 1, 2})]
        assert is_weaker_than(SynchronousDaemon(), DistributedDaemon(), ground)
        assert not is_weaker_than(DistributedDaemon(), SynchronousDaemon(), ground)

    def test_central_weaker_than_distributed(self):
        ground = [frozenset({0, 1, 2})]
        assert is_weaker_than(CentralDaemon(), DistributedDaemon(), ground)

    def test_synchronous_and_central_incomparable(self):
        ground = [frozenset({0, 1, 2})]
        assert not is_weaker_than(SynchronousDaemon(), CentralDaemon(), ground)
        assert not is_weaker_than(CentralDaemon(), SynchronousDaemon(), ground)


class TestFactory:
    def test_make_daemon(self):
        assert isinstance(make_daemon("sd"), SynchronousDaemon)
        assert isinstance(make_daemon("dd", activation_probability=0.7), DistributedDaemon)

    def test_make_daemon_unknown(self):
        with pytest.raises(DaemonError):
            make_daemon("quantum")
