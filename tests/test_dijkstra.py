"""Unit tests for Dijkstra's K-state token ring (the baseline protocol)."""

from __future__ import annotations

import random

import pytest

from repro.core import (
    CentralDaemon,
    SynchronousDaemon,
    measure_stabilization,
    synchronous_execution,
)
from repro.exceptions import ProtocolError
from repro.graphs import Graph, path_graph, ring_graph
from repro.mutex import DijkstraTokenRing, MutualExclusionSpec


class TestConstruction:
    def test_on_ring(self):
        protocol = DijkstraTokenRing.on_ring(6)
        assert protocol.K == 7
        assert protocol.bottom == 0
        assert len(protocol.ring_order) == 6

    def test_requires_ring(self):
        with pytest.raises(ProtocolError):
            DijkstraTokenRing(path_graph(5))

    def test_requires_at_least_two_processes(self):
        with pytest.raises(ProtocolError):
            DijkstraTokenRing(Graph([0], []))

    def test_two_process_ring(self):
        protocol = DijkstraTokenRing(ring_graph(2))
        assert protocol.predecessor(0) == 1
        assert protocol.predecessor(1) == 0

    def test_explicit_K_and_bottom(self):
        protocol = DijkstraTokenRing(ring_graph(5), K=9, bottom=2)
        assert protocol.K == 9
        assert protocol.bottom == 2
        assert protocol.ring_order[0] == 2

    def test_invalid_K(self):
        with pytest.raises(ProtocolError):
            DijkstraTokenRing(ring_graph(4), K=1)

    def test_invalid_bottom(self):
        with pytest.raises(ProtocolError):
            DijkstraTokenRing(ring_graph(4), bottom=9)

    def test_ring_order_is_a_cycle(self):
        protocol = DijkstraTokenRing.on_ring(7)
        order = list(protocol.ring_order)
        for a, b in zip(order, order[1:] + order[:1]):
            assert protocol.graph.has_edge(a, b)
        assert sorted(order) == list(range(7))

    def test_state_validation(self):
        protocol = DijkstraTokenRing.on_ring(4)
        with pytest.raises(ProtocolError):
            protocol.validate_state(0, protocol.K)
        with pytest.raises(ProtocolError):
            protocol.validate_state(0, "x")


class TestPrivilegeAndMoves:
    def test_legitimate_configuration_has_exactly_one_privilege(self):
        protocol = DijkstraTokenRing.on_ring(6)
        gamma = protocol.legitimate_configuration(0)
        privileged = protocol.privileged_vertices(gamma)
        assert privileged == frozenset({protocol.bottom})

    def test_privilege_equals_enabledness(self, rng):
        protocol = DijkstraTokenRing.on_ring(6)
        for _ in range(20):
            gamma = protocol.random_configuration(rng)
            for vertex in protocol.graph.vertices:
                assert protocol.is_privileged(gamma, vertex) == protocol.is_enabled(gamma, vertex)

    def test_bottom_increments_and_others_copy(self):
        protocol = DijkstraTokenRing.on_ring(4)
        gamma = protocol.legitimate_configuration(1)
        gamma2, records = protocol.apply(gamma, [protocol.bottom])
        assert gamma2[protocol.bottom] == 2
        # The successor of the bottom machine now sees a difference and copies.
        successor = protocol.ring_order[1]
        assert protocol.is_privileged(gamma2, successor)
        gamma3, _ = protocol.apply(gamma2, [successor])
        assert gamma3[successor] == 2

    def test_token_circulates_in_ring_order(self):
        protocol = DijkstraTokenRing.on_ring(5)
        execution = synchronous_execution(protocol, protocol.legitimate_configuration(0), 10)
        # In a legitimate configuration exactly one vertex is privileged at
        # any time and the privilege moves along the ring.
        for index in range(execution.steps + 1):
            assert len(protocol.privileged_vertices(execution.configuration(index))) == 1


class TestSelfStabilization:
    @pytest.mark.parametrize("n", [4, 6, 8])
    def test_stabilizes_under_synchronous_daemon(self, n, rng):
        protocol = DijkstraTokenRing.on_ring(n)
        spec = MutualExclusionSpec(protocol)
        for _ in range(5):
            gamma = protocol.random_configuration(rng)
            measurement = measure_stabilization(
                protocol, SynchronousDaemon(), gamma, spec, horizon=8 * n, check_liveness=True
            )
            assert measurement.stabilized
            assert measurement.liveness_ok
            # The paper's claim is n steps; allow the small constant slack of
            # our "last violation" measurement convention.
            assert measurement.stabilization_steps <= 2 * n

    @pytest.mark.parametrize("n", [4, 6])
    def test_stabilizes_under_central_daemon(self, n, rng):
        protocol = DijkstraTokenRing.on_ring(n)
        spec = MutualExclusionSpec(protocol)
        for _ in range(5):
            gamma = protocol.random_configuration(rng)
            measurement = measure_stabilization(
                protocol,
                CentralDaemon(),
                gamma,
                spec,
                horizon=8 * n * n,
                rng=random.Random(rng.randrange(2**32)),
            )
            assert measurement.stabilized
            assert measurement.stabilization_steps <= 4 * n * n
