"""Unit tests for the incremental engine machinery: ConfigurationBuffer,
ConfigurationView, LazyConfigurationTrace, Simulator engine/trace flags and
the automatic reference fallback for protocols with custom semantics."""

from __future__ import annotations

import random
from typing import Sequence

import pytest

from repro.core import (
    CentralDaemon,
    Configuration,
    ConfigurationBuffer,
    ConfigurationView,
    Execution,
    LazyConfigurationTrace,
    Protocol,
    Rule,
    Simulator,
    SynchronousDaemon,
    protocol_supports_incremental,
)
from repro.exceptions import SimulationError
from repro.graphs import path_graph, ring_graph
from repro.unison import AsynchronousUnison


class TokenPassing(Protocol):
    """Toy protocol: a 'token' bit is dropped by every non-zero vertex."""

    name = "token-passing"

    def __init__(self, graph):
        super().__init__(graph)
        self._rules = [
            Rule(
                "drop",
                lambda view: view.state == 1 and view.vertex != 0,
                lambda view: 0,
            )
        ]

    def rules(self) -> Sequence[Rule]:
        return self._rules

    def random_state(self, vertex, rng: random.Random) -> int:
        return rng.randrange(2)


class CustomApplyProtocol(TokenPassing):
    """Overrides ``apply`` — must force the reference engine."""

    def apply(self, configuration, selected, prepared=None):
        return super().apply(configuration, selected, prepared=prepared)


class OldStyleApplyProtocol(TokenPassing):
    """Overrides ``apply`` with the pre-engine 2-argument signature."""

    def apply(self, configuration, selected):
        return Protocol.apply(self, configuration, selected)


class CustomEnablednessProtocol(TokenPassing):
    """Overrides ``is_enabled`` — ``enabled_vertices`` must honour it."""

    def is_enabled(self, configuration, vertex):
        return vertex == 1 and super().is_enabled(configuration, vertex)


class MaskedViewProtocol(TokenPassing):
    """Overrides ``local_view`` (masks every neighbour state to 0) — the
    whole enabledness chain must observe the masked view."""

    def local_view(self, configuration, vertex):
        from repro.core import LocalView

        return LocalView(
            vertex=vertex,
            state=configuration[vertex],
            neighbor_states={u: 0 for u in self.graph.neighbors(vertex)},
            graph=self.graph,
        )


class NeighborGatedRule(Rule):
    """Rule subclass overriding ``is_enabled`` with an extra side condition
    (only enabled if some neighbour also holds the token)."""

    def is_enabled(self, view):
        return super().is_enabled(view) and any(
            s == 1 for s in view.neighbor_states.values()
        )


class GatedTokenPassing(TokenPassing):
    def __init__(self, graph):
        super().__init__(graph)
        rule = self._rules[0]
        self._rules = [NeighborGatedRule(rule.name, rule.guard, rule.action)]


class OverlappingRulesProtocol(Protocol):
    """Two rules with overlapping guards plus a ``choose_rule`` override
    that arbitrates (last enabled rule instead of the stock first).  The
    incremental engine must honour the override and therefore take its
    full-evaluation path instead of the first-enabled-rule fast path."""

    name = "overlapping"

    def __init__(self, graph):
        super().__init__(graph)
        self._rules = [
            Rule("inc", lambda view: view.state < 3, lambda view: view.state + 1),
            Rule("reset", lambda view: 0 < view.state < 3, lambda view: 0),
        ]

    def rules(self) -> Sequence[Rule]:
        return self._rules

    def random_state(self, vertex, rng: random.Random) -> int:
        return rng.randrange(4)

    def choose_rule(self, enabled_rules, view):
        return enabled_rules[-1]


class TestConfigurationBuffer:
    def test_mapping_interface(self):
        buffer = ConfigurationBuffer({0: 1, 1: 2})
        assert buffer[0] == 1
        assert len(buffer) == 2
        assert set(buffer) == {0, 1}
        assert 1 in buffer

    def test_unknown_vertex_raises(self):
        buffer = ConfigurationBuffer({0: 1})
        with pytest.raises(SimulationError):
            buffer[7]

    def test_apply_changes_in_place(self):
        buffer = ConfigurationBuffer({0: 1, 1: 2})
        buffer.apply_changes({1: 9})
        assert buffer[1] == 9
        with pytest.raises(SimulationError):
            buffer.apply_changes({5: 0})

    def test_snapshot_is_immutable_copy(self):
        buffer = ConfigurationBuffer({0: 1})
        snapshot = buffer.snapshot()
        buffer.apply_changes({0: 5})
        assert isinstance(snapshot, Configuration)
        assert snapshot[0] == 1
        assert buffer.snapshot()[0] == 5


class TestConfigurationView:
    def test_view_is_live(self):
        buffer = ConfigurationBuffer({0: 1, 1: 2})
        view = buffer.view()
        assert view[0] == 1
        buffer.apply_changes({0: 7})
        assert view[0] == 7

    def test_view_equality_and_dict(self):
        buffer = ConfigurationBuffer({0: 1})
        view = buffer.view()
        assert view == Configuration({0: 1})
        assert view == {0: 1}
        assert view.as_dict() == {0: 1}

    def test_updated_returns_configuration(self):
        buffer = ConfigurationBuffer({0: 1, 1: 2})
        view = buffer.view()
        updated = view.updated({0: 9})
        assert isinstance(updated, Configuration)
        assert updated[0] == 9
        assert buffer[0] == 1  # the buffer itself is untouched
        with pytest.raises(SimulationError):
            view.updated({9: 0})

    def test_snapshot_pins_states(self):
        buffer = ConfigurationBuffer({0: 1})
        view = buffer.view()
        pinned = view.snapshot()
        buffer.apply_changes({0: 3})
        assert pinned[0] == 1


class TestLazyConfigurationTrace:
    def _trace(self):
        initial = Configuration({0: 0, 1: 0})
        deltas = [{0: 1}, {1: 1}, {0: 2, 1: 2}]
        return LazyConfigurationTrace(initial, deltas), initial

    def test_length_and_indexing(self):
        trace, initial = self._trace()
        assert len(trace) == 4
        assert trace[0] is initial
        assert trace[1] == {0: 1, 1: 0}
        assert trace[3] == {0: 2, 1: 2}
        assert trace[-1] == trace[3]

    def test_out_of_range(self):
        trace, _ = self._trace()
        with pytest.raises(IndexError):
            trace[4]
        with pytest.raises(IndexError):
            trace[-5]

    def test_slicing_and_iteration(self):
        trace, _ = self._trace()
        assert trace[1:3] == [trace[1], trace[2]]
        assert list(trace) == [trace[i] for i in range(4)]

    def test_materialization_is_cached(self):
        trace, _ = self._trace()
        first = trace[3]
        assert trace[3] is first

    def test_full_walk_retains_only_checkpoints(self):
        initial = Configuration({0: 0})
        deltas = [{0: i + 1} for i in range(100)]
        trace = LazyConfigurationTrace(initial, deltas)
        walked = list(trace)
        assert [c[0] for c in walked] == list(range(101))
        # A sequential walk must not pin every configuration: only the
        # initial one plus periodic checkpoints stay cached.
        assert len(trace._cache) <= 1 + 100 // LazyConfigurationTrace._CHECKPOINT_STRIDE
        # Random access after the walk still reconstructs correctly.
        assert trace[77][0] == 77


class TestTraceModes:
    def test_light_execution_matches_full(self):
        protocol = AsynchronousUnison(ring_graph(5))
        initial = protocol.random_configuration(random.Random(3))
        full = Simulator(protocol, SynchronousDaemon(), trace="full").run(initial, 12)
        light = Simulator(protocol, SynchronousDaemon(), trace="light").run(initial, 12)
        assert list(light.configurations) == list(full.configurations)
        assert light.final == full.final
        assert light.steps == full.steps

    def test_run_trace_override(self):
        protocol = AsynchronousUnison(ring_graph(4))
        simulator = Simulator(protocol, SynchronousDaemon(), trace="full")
        initial = protocol.legitimate_configuration(0)
        execution = simulator.run(initial, 5, trace="light")
        assert isinstance(execution, Execution)
        assert execution.steps == 5

    def test_from_activations_round_trip(self):
        protocol = AsynchronousUnison(ring_graph(4))
        initial = protocol.random_configuration(random.Random(1))
        full = Simulator(protocol, SynchronousDaemon()).run(initial, 8)
        rebuilt = Execution.from_activations(
            initial=full.initial,
            selections=[full.selection(i) for i in range(full.steps)],
            activations=[full.activation_records(i) for i in range(full.steps)],
            enabled_sets=[full.enabled_at(i) for i in range(full.steps + 1)],
            truncated=full.truncated,
        )
        assert list(rebuilt.configurations) == list(full.configurations)


class TestEngineSelection:
    def test_unknown_engine_rejected(self):
        protocol = TokenPassing(path_graph(3))
        with pytest.raises(SimulationError):
            Simulator(protocol, SynchronousDaemon(), engine="warp")

    def test_unknown_trace_rejected(self):
        protocol = TokenPassing(path_graph(3))
        with pytest.raises(SimulationError):
            Simulator(protocol, SynchronousDaemon(), trace="verbose")

    def test_default_is_incremental(self):
        protocol = TokenPassing(path_graph(3))
        simulator = Simulator(protocol, SynchronousDaemon())
        assert simulator.engine == "incremental"
        assert simulator.trace == "full"

    def test_custom_apply_falls_back_to_reference(self):
        protocol = CustomApplyProtocol(path_graph(3))
        assert not protocol_supports_incremental(protocol)
        simulator = Simulator(protocol, SynchronousDaemon())
        assert simulator.engine == "reference"
        gamma = protocol.configuration({0: 1, 1: 1, 2: 1})
        execution = simulator.run(gamma, max_steps=5)
        assert execution.final == {0: 1, 1: 0, 2: 0}

    def test_old_style_apply_override_still_runs(self):
        protocol = OldStyleApplyProtocol(path_graph(3))
        simulator = Simulator(protocol, SynchronousDaemon())
        assert simulator.engine == "reference"
        gamma = protocol.configuration({0: 1, 1: 1, 2: 1})
        result = simulator.step(gamma)
        assert result.configuration == {0: 1, 1: 0, 2: 0}
        execution = simulator.run(gamma, max_steps=5)
        assert execution.final == {0: 1, 1: 0, 2: 0}

    def test_custom_enabledness_override_is_honoured(self):
        protocol = CustomEnablednessProtocol(path_graph(3))
        gamma = protocol.configuration({0: 1, 1: 1, 2: 1})
        assert protocol.enabled_vertices(gamma) == frozenset({1})
        simulator = Simulator(protocol, SynchronousDaemon())
        assert simulator.engine == "reference"
        execution = simulator.run(gamma, max_steps=5)
        assert execution.final == {0: 1, 1: 0, 2: 1}

    def test_local_view_override_observed_by_enabledness_chain(self):
        protocol = MaskedViewProtocol(path_graph(3))
        assert not protocol_supports_incremental(protocol)
        gamma = protocol.configuration({0: 1, 1: 1, 2: 1})
        # The masked view zeroes neighbours but the vertex's own state is
        # untouched, so the drop rule still fires for non-zero vertices —
        # and crucially, enabled_rules sees the view the subclass built.
        view, enabled = protocol.evaluate(gamma, 1)
        assert all(s == 0 for s in view.neighbor_states.values())
        assert enabled

    def test_rule_subclass_is_enabled_honoured_by_incremental_engine(self):
        protocol = GatedTokenPassing(path_graph(3))
        assert protocol_supports_incremental(protocol)
        # Vertex 2 holds the token but its only neighbour (1) does not, so
        # the subclass gate disables it — the raw guard alone would fire.
        gamma = protocol.configuration({0: 0, 1: 0, 2: 1})
        for engine in ("reference", "incremental"):
            execution = Simulator(protocol, SynchronousDaemon(), engine=engine).run(
                gamma, max_steps=5
            )
            assert execution.enabled_at(0) == frozenset()
            assert execution.is_terminal
            assert execution.final == gamma

    def test_choose_rule_override_honoured_by_incremental_engine(self):
        """An overridden ``choose_rule`` (overlapping guards) is called by
        both engines and the executions stay identical."""
        graph = ring_graph(6)
        protocol = OverlappingRulesProtocol(graph)
        assert protocol_supports_incremental(protocol)
        initial = protocol.random_configuration(random.Random(3))
        runs = {}
        for engine in ("incremental", "reference"):
            simulator = Simulator(
                protocol, SynchronousDaemon(), rng=random.Random(1), engine=engine
            )
            execution = simulator.run(initial, max_steps=12)
            runs[engine] = execution
        incremental, reference = runs["incremental"], runs["reference"]
        assert list(incremental.configurations) == list(reference.configurations)
        # Where both guards held, the override's pick (the *last* enabled
        # rule, "reset") must have fired.
        fired = {
            record.rule_name
            for i in range(incremental.steps)
            for record in incremental.activation_records(i)
            if 0 < record.old_state < 3
        }
        assert fired == {"reset"}

    def test_reference_engine_supports_light_trace(self):
        protocol = AsynchronousUnison(ring_graph(5))
        initial = protocol.random_configuration(random.Random(3))
        full = Simulator(protocol, SynchronousDaemon(), engine="reference").run(initial, 10)
        light = Simulator(
            protocol, SynchronousDaemon(), engine="reference", trace="light"
        ).run(initial, 10)
        assert list(light.configurations) == list(full.configurations)

    def test_mismatched_initial_configuration_rejected(self):
        protocol = TokenPassing(path_graph(3))
        simulator = Simulator(protocol, SynchronousDaemon())
        with pytest.raises(SimulationError):
            simulator.run(Configuration({0: 1}), max_steps=3)

    def test_reference_engine_still_available(self):
        protocol = AsynchronousUnison(ring_graph(4))
        initial = protocol.random_configuration(random.Random(0))
        reference = Simulator(
            protocol, CentralDaemon(), rng=random.Random(5), engine="reference"
        ).run(initial, 20)
        incremental = Simulator(
            protocol, CentralDaemon(), rng=random.Random(5), engine="incremental"
        ).run(initial, 20)
        assert list(reference.configurations) == list(incremental.configurations)
