"""Property test: the incremental AND vector engines are observationally
equal to the reference engine.

For every protocol of the library, every daemon, random graph shapes and
seeds, the executions produced by the incremental engine (both trace
modes) and the vectorized array-state engine (both trace modes; protocols
without a kernel exercise its graceful fallback) must match the reference
engine's execution action for action: same configurations, same daemon
selections, same enabled sets, same truncation verdict, and the same
activation records per action (record *order* within one action follows
set iteration order and is compared order-insensitively).

The suite runs identically with and without NumPy installed: when NumPy is
missing the ``engine="vector"`` runs silently degrade to the incremental
engine (pinned explicitly by the fallback tests at the bottom), so the
assertions still compare three observationally equal executions.
"""

from __future__ import annotations

import random
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import BfsSpanningTree, MaximalMatching
from repro.core import (
    AdversarialCentralDaemon,
    CentralDaemon,
    Daemon,
    DistributedDaemon,
    LocallyCentralDaemon,
    RoundRobinCentralDaemon,
    Simulator,
    StarvationDaemon,
    SynchronousDaemon,
)
from repro.graphs import random_connected_graph, ring_graph
from repro.mutex import SSME, DijkstraTokenRing
from repro.unison import AsynchronousUnison

PROTOCOL_FACTORIES = {
    "ssme": SSME,
    "unison": lambda graph: AsynchronousUnison(graph, validate_parameters=False),
    "bfs": BfsSpanningTree,
    "matching": MaximalMatching,
}


class AlternatingDaemon(Daemon):
    """Alternates synchronous (full) and single-vertex selections.

    Crossing the incremental engine's dense/sparse refresh threshold on
    every other action exercises the switch between the batch and dirty-set
    refresh paths within a single run.
    """

    name = "alt"

    def select(self, enabled, configuration, step_index, rng):
        if step_index % 2 == 0:
            return enabled
        return frozenset({self._ordered_enabled(enabled)[0]})


DAEMON_FACTORIES = {
    "sd": SynchronousDaemon,
    "cd": CentralDaemon,
    "cd-rr": RoundRobinCentralDaemon,
    "cd-adv": AdversarialCentralDaemon,
    "dd": lambda: DistributedDaemon(0.4),
    "lcd": LocallyCentralDaemon,
    "ud-starve": StarvationDaemon,
    "alt": AlternatingDaemon,
}

#: Daemons whose selections are dense enough to drive the engine into its
#: batch-refresh path on essentially every action.
DENSE_DAEMON_FACTORIES = {
    "sd": SynchronousDaemon,
    "dd-dense": lambda: DistributedDaemon(0.9),
    "alt": AlternatingDaemon,
}


def _record_key(record):
    return (repr(record.vertex), record.rule_name)


def _normalized_records(execution):
    """Per-action records as order-insensitive comparable lists."""
    normalized = []
    for index in range(execution.steps):
        records = sorted(execution.activation_records(index), key=_record_key)
        normalized.append(
            [(r.vertex, r.rule_name, r.old_state, r.new_state) for r in records]
        )
    return normalized


def naive_run(protocol, daemon, rng, initial, max_steps):
    """A hand-rolled naive simulation loop, independent of the simulator's
    shared-evaluation path: the oracle of oracles.

    Uses only the public ``enabled_vertices`` + two-argument ``apply``
    chain, mirroring the pre-engine semantics statement for statement.
    """
    daemon.bind(protocol)
    daemon.reset()
    configurations = [initial]
    selections = []
    enabled_sets = []
    current = initial
    for index in range(max_steps + 1):
        enabled = protocol.enabled_vertices(current)
        enabled_sets.append(enabled)
        if not enabled or index == max_steps:
            break
        selection = daemon.checked_select(enabled, current, index, rng)
        current, _ = protocol.apply(current, selection)
        selections.append(selection)
        configurations.append(current)
    return configurations, selections, enabled_sets


#: Engine/trace pairs every equivalence case compares against the first
#: (reference) entry.  The vector entries degrade to the incremental
#: engine for protocols without a kernel (or without NumPy) — the runs are
#: then redundant but the assertions still hold, which is exactly the
#: graceful-fallback contract.
EQUIVALENCE_MODES = (
    ("reference", "full"),
    ("incremental", "full"),
    ("incremental", "light"),
    ("vector", "full"),
    ("vector", "light"),
    ("vector-superstep", "full"),
    ("vector-superstep", "light"),
)


def assert_equivalent_runs(protocol, daemon_name, seed, steps):
    """Run every engine/trace mode and compare the executions against
    reference/full (plus a hand-rolled naive loop)."""
    initial = protocol.random_configuration(random.Random(seed))
    executions = []
    for engine, trace in EQUIVALENCE_MODES:
        simulator = Simulator(
            protocol,
            DAEMON_FACTORIES[daemon_name](),
            rng=random.Random(seed + 1),
            engine=engine,
            trace=trace,
        )
        # The reference engine records full traces regardless of mode.
        executions.append(simulator.run(initial, max_steps=steps))
    reference = executions[0]
    for other in executions[1:]:
        assert other.steps == reference.steps
        assert other.truncated == reference.truncated
        assert list(other.configurations) == list(reference.configurations)
        assert [other.selection(i) for i in range(other.steps)] == [
            reference.selection(i) for i in range(reference.steps)
        ]
        assert [other.enabled_at(i) for i in range(other.steps)] == [
            reference.enabled_at(i) for i in range(reference.steps)
        ]
        assert _normalized_records(other) == _normalized_records(reference)

    # The simulator's reference mode shares the single-evaluation fast path
    # with the incremental engine; cross-check both against a naive loop
    # that uses none of the new machinery.
    naive_configs, naive_selections, naive_enabled = naive_run(
        protocol,
        DAEMON_FACTORIES[daemon_name](),
        random.Random(seed + 1),
        initial,
        steps,
    )
    assert list(reference.configurations) == naive_configs
    assert [reference.selection(i) for i in range(reference.steps)] == naive_selections
    assert [
        reference.enabled_at(i) for i in range(len(naive_enabled))
    ] == naive_enabled


@settings(max_examples=40, deadline=None)
@given(
    protocol_name=st.sampled_from(sorted(PROTOCOL_FACTORIES)),
    daemon_name=st.sampled_from(sorted(DAEMON_FACTORIES)),
    n=st.integers(2, 9),
    p=st.floats(0.0, 0.5),
    graph_seed=st.integers(0, 10_000),
    seed=st.integers(0, 10_000),
    steps=st.integers(0, 35),
)
def test_engines_agree_on_random_graphs(
    protocol_name, daemon_name, n, p, graph_seed, seed, steps
):
    graph = random_connected_graph(n, p, random.Random(graph_seed))
    protocol = PROTOCOL_FACTORIES[protocol_name](graph)
    assert_equivalent_runs(protocol, daemon_name, seed, steps)


@settings(max_examples=20, deadline=None)
@given(
    daemon_name=st.sampled_from(sorted(DAEMON_FACTORIES)),
    n=st.integers(3, 9),
    seed=st.integers(0, 10_000),
    steps=st.integers(0, 35),
)
def test_engines_agree_on_dijkstra_rings(daemon_name, n, seed, steps):
    protocol = DijkstraTokenRing(ring_graph(n))
    assert_equivalent_runs(protocol, daemon_name, seed, steps)


@settings(max_examples=20, deadline=None)
@given(
    protocol_name=st.sampled_from(sorted(PROTOCOL_FACTORIES)),
    daemon_name=st.sampled_from(sorted(DENSE_DAEMON_FACTORIES)),
    n=st.integers(16, 40),
    seed=st.integers(0, 10_000),
    steps=st.integers(1, 12),
)
def test_engines_agree_in_batch_refresh_regime(
    protocol_name, daemon_name, n, seed, steps
):
    """Reference ≡ incremental specifically where the batch refresh kicks in.

    ``n`` is large enough (and the selections dense enough) that
    ``len(changes) >= n // 4`` holds on essentially every action, so these
    runs exercise the persistent-view batch scan — including the mid-run
    switch between batch and sparse for the alternating daemon — in both
    trace modes.
    """
    graph = ring_graph(n)
    protocol = PROTOCOL_FACTORIES[protocol_name](graph)
    daemon_factory = DENSE_DAEMON_FACTORIES[daemon_name]
    initial = protocol.random_configuration(random.Random(seed))
    executions = []
    for engine, trace in EQUIVALENCE_MODES:
        simulator = Simulator(
            protocol,
            daemon_factory(),
            rng=random.Random(seed + 1),
            engine=engine,
            trace=trace,
        )
        executions.append(simulator.run(initial, max_steps=steps))
    reference = executions[0]
    for other in executions[1:]:
        assert other.steps == reference.steps
        assert other.truncated == reference.truncated
        assert list(other.configurations) == list(reference.configurations)
        assert [other.enabled_at(i) for i in range(other.steps)] == [
            reference.enabled_at(i) for i in range(reference.steps)
        ]
        assert _normalized_records(other) == _normalized_records(reference)


@settings(max_examples=15, deadline=None)
@given(
    protocol_name=st.sampled_from(sorted(PROTOCOL_FACTORIES)),
    daemon_name=st.sampled_from(sorted(DAEMON_FACTORIES)),
    seed=st.integers(0, 10_000),
    threshold=st.integers(0, 6),
)
def test_engines_agree_with_stop_when(protocol_name, daemon_name, seed, threshold):
    """``stop_when`` must observe the same configurations in both engines."""
    graph = ring_graph(6)
    protocol = PROTOCOL_FACTORIES[protocol_name](graph)
    initial = protocol.random_configuration(random.Random(seed))
    observed = {}

    def runner(engine, trace):
        seen = []

        def stop_when(configuration, index):
            seen.append(dict(configuration))
            return index >= threshold

        simulator = Simulator(
            protocol,
            DAEMON_FACTORIES[daemon_name](),
            rng=random.Random(seed + 1),
            engine=engine,
            trace=trace,
        )
        execution = simulator.run(initial, max_steps=30, stop_when=stop_when)
        return execution, seen

    reference, seen_reference = runner("reference", "full")
    for engine in ("incremental", "vector", "vector-superstep"):
        light, seen_light = runner(engine, "light")
        assert seen_light == seen_reference
        assert light.steps == reference.steps
        assert light.truncated == reference.truncated
        assert list(light.configurations) == list(reference.configurations)


@pytest.mark.parametrize("daemon_name", sorted(DAEMON_FACTORIES))
def test_engines_agree_until_terminal_on_silent_protocols(daemon_name):
    """Silent protocols must reach the same terminal configuration."""
    graph = random_connected_graph(7, 0.3, random.Random(3))
    for factory in (BfsSpanningTree, MaximalMatching):
        protocol = factory(graph)
        assert_equivalent_runs(protocol, daemon_name, seed=11, steps=400)


#: Protocols that actually declare an array kernel — the vector-specific
#: cases below must exercise the real vectorized backend, not its fallback.
VECTOR_PROTOCOL_FACTORIES = {
    "ssme": SSME,
    "unison": lambda graph: AsynchronousUnison(graph, validate_parameters=False),
    "dijkstra": DijkstraTokenRing,
}


@settings(max_examples=20, deadline=None)
@given(
    protocol_name=st.sampled_from(sorted(VECTOR_PROTOCOL_FACTORIES)),
    daemon_name=st.sampled_from(sorted(DENSE_DAEMON_FACTORIES)),
    n=st.integers(16, 40),
    seed=st.integers(0, 10_000),
    steps=st.integers(1, 12),
)
def test_vector_kernel_agrees_in_dense_regime(protocol_name, daemon_name, n, seed, steps):
    """Vector ≡ incremental ≡ reference where the array kernel actually runs.

    Rings large enough that dense selections exercise the whole-array step
    (and, with the alternating daemon, the per-run cached enabled set under
    membership churn), for every protocol that declares a kernel.  With
    NumPy installed the runs are asserted to really use the vector backend.
    """
    protocol = VECTOR_PROTOCOL_FACTORIES[protocol_name](ring_graph(n))
    from repro.core import protocol_supports_vector

    simulator = Simulator(
        protocol,
        DENSE_DAEMON_FACTORIES[daemon_name](),
        rng=random.Random(seed + 1),
        engine="vector",
    )
    if protocol_supports_vector(protocol):
        assert simulator.engine == "vector"
    assert_equivalent_runs_dense(protocol, daemon_name, seed, steps)


def assert_equivalent_runs_dense(protocol, daemon_name, seed, steps):
    initial = protocol.random_configuration(random.Random(seed))
    daemon_factory = DENSE_DAEMON_FACTORIES[daemon_name]
    executions = []
    for engine, trace in EQUIVALENCE_MODES:
        simulator = Simulator(
            protocol,
            daemon_factory(),
            rng=random.Random(seed + 1),
            engine=engine,
            trace=trace,
        )
        executions.append(simulator.run(initial, max_steps=steps))
    reference = executions[0]
    for other in executions[1:]:
        assert other.steps == reference.steps
        assert other.truncated == reference.truncated
        assert list(other.configurations) == list(reference.configurations)
        assert [other.enabled_at(i) for i in range(other.steps)] == [
            reference.enabled_at(i) for i in range(reference.steps)
        ]
        assert _normalized_records(other) == _normalized_records(reference)


class TestNoNumpyFallback:
    """Backend selection must degrade cleanly when NumPy is unavailable.

    The stub poisons ``sys.modules["numpy"]`` (making ``import numpy``
    raise), which is exactly what ``numpy_available()`` re-checks on every
    call; the CI job without NumPy installed runs the whole suite in that
    state for real.
    """

    def _protocol(self):
        return AsynchronousUnison(ring_graph(10), validate_parameters=False)

    def test_vector_request_degrades_to_incremental(self, monkeypatch):
        from repro.core import numpy_available

        protocol = self._protocol()
        initial = protocol.random_configuration(random.Random(3))
        reference = Simulator(
            protocol, SynchronousDaemon(), rng=random.Random(4), engine="reference"
        ).run(initial, max_steps=25)

        monkeypatch.setitem(sys.modules, "numpy", None)
        assert not numpy_available()
        for engine in ("vector", "vector-superstep", "auto"):
            simulator = Simulator(
                protocol, SynchronousDaemon(), rng=random.Random(4), engine=engine
            )
            assert simulator.engine == "incremental"
            execution = simulator.run(initial, max_steps=25)
            assert simulator.last_run_backend == "dict"
            assert list(execution.configurations) == list(reference.configurations)
            assert execution.truncated == reference.truncated

    def test_capability_hooks_return_none_without_numpy(self, monkeypatch):
        from repro.core import protocol_supports_vector

        protocol = self._protocol()
        monkeypatch.setitem(sys.modules, "numpy", None)
        assert protocol.array_codec() is None
        assert protocol.array_kernel() is None
        assert not protocol_supports_vector(protocol)
        dijkstra = DijkstraTokenRing(ring_graph(5))
        assert dijkstra.array_codec() is None
        assert dijkstra.array_kernel() is None

    def test_vector_backend_used_when_numpy_present(self):
        pytest.importorskip("numpy")
        protocol = self._protocol()
        initial = protocol.random_configuration(random.Random(3))
        # auto + synchronous daemon + kernel → batched supersteps.
        simulator = Simulator(protocol, SynchronousDaemon(), rng=random.Random(4))
        assert simulator.engine == "vector-superstep"
        simulator.run(initial, max_steps=10)
        assert simulator.last_run_backend == "vector-superstep"
        # auto + dense-but-random daemon → single-step vector (selections
        # are not deterministic, so supersteps do not apply).
        dense = Simulator(
            protocol, DistributedDaemon(0.9), rng=random.Random(4)
        )
        assert dense.engine == "vector"
        dense.run(initial, max_steps=10)
        assert dense.last_run_backend == "vector"
        # An explicit single-step request is honoured even for a
        # synchronous daemon (benchmarks compare the two paths).
        single = Simulator(
            protocol, SynchronousDaemon(), rng=random.Random(4), engine="vector"
        )
        assert single.engine == "vector"
        single.run(initial, max_steps=10)
        assert single.last_run_backend == "vector"
        # An explicit superstep request under a non-synchronous daemon
        # degrades to the single-step vector backend.
        degraded = Simulator(
            protocol,
            DistributedDaemon(0.9),
            rng=random.Random(4),
            engine="vector-superstep",
        )
        assert degraded.engine == "vector"
        # Sparse daemons keep the dirty-set paths under auto selection.
        sparse = Simulator(protocol, CentralDaemon(), rng=random.Random(4))
        assert sparse.engine == "incremental"
