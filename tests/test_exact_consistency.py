"""The consistency gate: exact worst case >= sampled worst case.

One inequality catches bugs on both sides at once.  For any shared set of
initial configurations, every schedule a sampled daemon follows is one of
the schedules the exact checker expands, and a sampled trace's observed
stabilization index never exceeds its entry time into the legitimate
attractor — so ``exact >= sampled`` must hold *unconditionally*.  A
violation means either the sampler over-reports (safety monitoring bug,
horizon accounting bug) or the solver under-reports (expansion missing
schedules, fixpoint converging too early).

The property is fuzzed across protocol families (Dijkstra, unison, SSME,
and the silent baselines BFS tree and maximal matching), daemon classes
(synchronous / central / distributed) with their matching sampled daemons,
seeds, and workloads of random initial configurations.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import BfsSpanningTree, BfsTreeSpec, MaximalMatching, MaximalMatchingSpec
from repro.core import (
    CentralDaemon,
    DistributedDaemon,
    SynchronousDaemon,
    worst_case_stabilization,
)
from repro.graphs import path_graph, ring_graph
from repro.mutex import SSME, DijkstraTokenRing, MutualExclusionSpec
from repro.unison import AsynchronousUnison, AsynchronousUnisonSpec
from repro.verify import StateSpace, verify_stabilization

#: (instance builder, horizon) per family; sizes stay small enough that the
#: reachable closures solve in milliseconds.
def _dijkstra(n):
    protocol = DijkstraTokenRing.on_ring(n)
    return protocol, MutualExclusionSpec(protocol), 6 * n * protocol.K + 40


def _unison(n):
    protocol = AsynchronousUnison(ring_graph(n), alpha=2, K=n + 1)
    return protocol, AsynchronousUnisonSpec(protocol), 60 * n + 100


def _ssme(n):
    protocol = SSME(ring_graph(n))
    return protocol, MutualExclusionSpec(protocol), protocol.K + 8 * protocol.alpha + 40


def _bfs(n):
    protocol = BfsSpanningTree(path_graph(n))
    return protocol, BfsTreeSpec(protocol), 20 * n + 40


def _matching(n):
    protocol = MaximalMatching(ring_graph(n))
    # The paper's distributed-daemon bound is 4n + 2m steps.
    return protocol, MaximalMatchingSpec(protocol), 6 * n + 40


INSTANCES = {
    "dijkstra-3": lambda: _dijkstra(3),
    "dijkstra-4": lambda: _dijkstra(4),
    "dijkstra-5": lambda: _dijkstra(5),
    "unison-3": lambda: _unison(3),
    "unison-4": lambda: _unison(4),
    "ssme-4": lambda: _ssme(4),
    "bfs-3": lambda: _bfs(3),
    "bfs-4": lambda: _bfs(4),
    "matching-3": lambda: _matching(3),
    "matching-4": lambda: _matching(4),
}

#: Daemon class -> a sampled daemon whose every selection the class admits.
SAMPLED_DAEMONS = {
    "synchronous": SynchronousDaemon,
    "central": CentralDaemon,
    "distributed": lambda: DistributedDaemon(activation_probability=0.5),
}


@given(
    instance=st.sampled_from(sorted(INSTANCES)),
    daemon_class=st.sampled_from(sorted(SAMPLED_DAEMONS)),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=20, deadline=None)
def test_exact_dominates_sampled(instance, daemon_class, seed):
    protocol, specification, horizon = INSTANCES[instance]()
    rng = random.Random(seed)
    initials = [protocol.random_configuration(rng) for _ in range(3)]

    result = verify_stabilization(protocol, specification, daemon_class, initials)
    sampled = worst_case_stabilization(
        protocol=protocol,
        daemon_factory=SAMPLED_DAEMONS[daemon_class],
        specification=specification,
        initial_configurations=initials,
        horizon=horizon,
        rng=random.Random(rng.randrange(2**63)),
        runs_per_configuration=2,
        trace="light",
    ).max_steps

    # All the library protocols stabilize under every daemon class, so the
    # exact side must certify that — divergence here would itself be a bug.
    assert result.stabilizes, "exact checker reported divergence on a stabilizing instance"
    if sampled is None:
        # The sampled run outran its horizon; the exact value must explain
        # why (the adversary can indeed force more steps than the window).
        assert result.exact_worst_case > horizon
    else:
        assert result.exact_worst_case >= sampled


@pytest.mark.parametrize("n", [4, 6])
def test_exact_dominates_sampled_on_the_shared_theorem2_workload(n):
    """The gate on the exact workload the theorem2 sweep uses (not random)."""
    from repro.experiments import mutex_workload

    protocol = SSME(ring_graph(n))
    specification = MutualExclusionSpec(protocol)
    workload = mutex_workload(
        protocol, random.Random(0), random_count=4, extra_pairs=2
    )
    result = verify_stabilization(protocol, specification, "synchronous", workload)
    sampled = worst_case_stabilization(
        protocol=protocol,
        daemon_factory=SynchronousDaemon,
        specification=specification,
        initial_configurations=workload,
        horizon=protocol.K + 4 * protocol.alpha + 16,
        trace="light",
    ).max_steps
    assert sampled is not None
    assert result.exact_worst_case >= sampled


def test_baselines_declare_exactly_checkable_state_spaces():
    """The Section 3 baselines are exactly checkable: their declared
    per-vertex domains enumerate correctly and the full product space is
    certified stabilizing (smoke sizes)."""
    bfs = BfsSpanningTree(path_graph(4))
    for vertex in bfs.graph.vertices:
        assert tuple(bfs.vertex_state_space(vertex)) == tuple(range(bfs.max_level + 1))
    assert StateSpace(bfs).size == (bfs.max_level + 1) ** 4
    result = verify_stabilization(bfs, BfsTreeSpec(bfs), "distributed")
    assert result.exhaustive and result.stabilizes

    matching = MaximalMatching(ring_graph(3))
    for vertex in matching.graph.vertices:
        domain = tuple(matching.vertex_state_space(vertex))
        assert len(domain) == 2 * (len(matching.graph.neighbors(vertex)) + 1)
        assert len(set(domain)) == len(domain)
        for state in domain:
            matching.validate_state(vertex, state)
    result = verify_stabilization(matching, MaximalMatchingSpec(matching), "central")
    assert result.exhaustive and result.stabilizes
