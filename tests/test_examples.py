"""Smoke tests: every shipped example runs to completion.

The examples are part of the public deliverable, so they must keep working;
the fast ones are executed with reduced sizes where their ``main`` accepts
parameters, the slower study is only imported and spot-checked.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def load_example(name: str):
    """Import an example script as a module without executing ``main``."""
    path = EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    assert spec.loader is not None
    spec.loader.exec_module(module)
    return module


class TestExamplesRun:
    def test_examples_directory_contents(self):
        names = {path.name for path in EXAMPLES_DIR.glob("*.py")}
        assert {
            "quickstart.py",
            "sensor_grid_recovery.py",
            "speculation_study.py",
            "unison_clock_sync.py",
            "lower_bound_witness.py",
            "exact_verification.py",
        } <= names

    def test_quickstart(self, capsys):
        module = load_example("quickstart.py")
        module.main(n=6, seed=3)
        out = capsys.readouterr().out
        assert "liveness holds" in out

    def test_lower_bound_witness(self, capsys):
        module = load_example("lower_bound_witness.py")
        module.main(n=9)
        out = capsys.readouterr().out
        assert "double privilege" in out
        assert "optimal" in out

    def test_unison_clock_sync(self, capsys):
        module = load_example("unison_clock_sync.py")
        module.main(n=8, seed=2)
        out = capsys.readouterr().out
        assert "reached Γ₁" in out

    def test_exact_verification(self, capsys):
        module = load_example("exact_verification.py")
        module.main(n=4, seed=1)
        out = capsys.readouterr().out
        assert "certified tight" in out
        assert "speculation pays" in out

    def test_sensor_grid_recovery(self, capsys):
        module = load_example("sensor_grid_recovery.py")
        module.main(seed=4)
        out = capsys.readouterr().out
        assert "phase 3" in out
        assert "Theorem 2 bound" in out

    @pytest.mark.slow
    def test_speculation_study(self, capsys):
        module = load_example("speculation_study.py")
        module.RING_SIZES = (8, 12)
        module.main(seed=1)
        out = capsys.readouterr().out
        assert "growth of SSME" in out
