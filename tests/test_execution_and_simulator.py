"""Unit tests for Execution traces and the Simulator."""

from __future__ import annotations

import random
from typing import Sequence

import pytest

from repro.core import (
    CentralDaemon,
    Configuration,
    Execution,
    Protocol,
    Rule,
    Simulator,
    SynchronousDaemon,
    synchronous_execution,
)
from repro.exceptions import SimulationError
from repro.graphs import path_graph, ring_graph
from repro.unison import AsynchronousUnison


class TokenPassing(Protocol):
    """Toy protocol: a single 'token' bit travels towards vertex 0."""

    name = "token-passing"

    def __init__(self, graph):
        super().__init__(graph)
        self._rules = [
            Rule(
                "drop",
                lambda view: view.state == 1 and view.vertex != 0,
                lambda view: 0,
            )
        ]

    def rules(self) -> Sequence[Rule]:
        return self._rules

    def random_state(self, vertex, rng: random.Random) -> int:
        return rng.randrange(2)


@pytest.fixture
def unison_ring():
    return AsynchronousUnison(ring_graph(5))


class TestSimulatorStep:
    def test_step_terminal(self):
        protocol = TokenPassing(path_graph(3))
        simulator = Simulator(protocol, SynchronousDaemon())
        gamma = protocol.configuration({0: 0, 1: 0, 2: 0})
        result = simulator.step(gamma)
        assert result.terminal
        assert result.configuration == gamma
        assert result.selection == frozenset()

    def test_step_progress(self):
        protocol = TokenPassing(path_graph(3))
        simulator = Simulator(protocol, SynchronousDaemon())
        gamma = protocol.configuration({0: 1, 1: 1, 2: 1})
        result = simulator.step(gamma)
        assert not result.terminal
        assert result.configuration == {0: 1, 1: 0, 2: 0}
        assert result.enabled == frozenset({1, 2})


class TestSimulatorRun:
    def test_run_until_terminal(self):
        protocol = TokenPassing(path_graph(4))
        simulator = Simulator(protocol, SynchronousDaemon())
        gamma = protocol.configuration({0: 1, 1: 1, 2: 1, 3: 1})
        execution = simulator.run(gamma, max_steps=10)
        assert execution.is_terminal
        assert execution.steps == 1
        assert execution.final == {0: 1, 1: 0, 2: 0, 3: 0}

    def test_run_respects_max_steps(self, unison_ring):
        simulator = Simulator(unison_ring, SynchronousDaemon())
        execution = simulator.run(unison_ring.legitimate_configuration(0), max_steps=7)
        assert execution.steps == 7
        assert execution.truncated

    def test_run_zero_steps(self, unison_ring):
        simulator = Simulator(unison_ring, SynchronousDaemon())
        execution = simulator.run(unison_ring.legitimate_configuration(0), max_steps=0)
        assert execution.steps == 0
        assert execution.initial == execution.final

    def test_run_negative_steps(self, unison_ring):
        simulator = Simulator(unison_ring, SynchronousDaemon())
        with pytest.raises(SimulationError):
            simulator.run(unison_ring.legitimate_configuration(0), max_steps=-1)

    def test_stop_when_predicate(self, unison_ring):
        simulator = Simulator(unison_ring, SynchronousDaemon())
        execution = simulator.run(
            unison_ring.legitimate_configuration(0),
            max_steps=50,
            stop_when=lambda config, index: config[0] == 3,
        )
        assert execution.final[0] == 3
        assert execution.steps == 3

    def test_run_until_terminal_raises_when_budget_exhausted(self, unison_ring):
        simulator = Simulator(unison_ring, SynchronousDaemon())
        with pytest.raises(SimulationError):
            simulator.run_until_terminal(unison_ring.legitimate_configuration(0), max_steps=5)

    def test_run_until_terminal_on_silent_protocol(self):
        protocol = TokenPassing(path_graph(3))
        simulator = Simulator(protocol, CentralDaemon("first"), rng=random.Random(0))
        gamma = protocol.configuration({0: 0, 1: 1, 2: 1})
        execution = simulator.run_until_terminal(gamma, max_steps=10)
        assert execution.is_terminal
        assert execution.final == {0: 0, 1: 0, 2: 0}

    def test_run_until_terminal_threads_trace(self):
        """Regression: ``trace=`` used to be silently dropped."""
        protocol = TokenPassing(path_graph(4))
        gamma = protocol.configuration({0: 1, 1: 1, 2: 1, 3: 1})
        simulator = Simulator(protocol, SynchronousDaemon())
        light = simulator.run_until_terminal(gamma, max_steps=10)  # default light
        full = simulator.run_until_terminal(gamma, max_steps=10, trace="full")
        from repro.core import LazyConfigurationTrace

        assert isinstance(light._configurations, LazyConfigurationTrace)
        assert not isinstance(full._configurations, LazyConfigurationTrace)
        assert list(light.configurations) == list(full.configurations)
        assert light.final == full.final

    def test_run_until_terminal_threads_stop_when(self):
        """Regression: ``stop_when`` used to be silently dropped; a stop
        before a terminal configuration now truncates (and raises)."""
        protocol = TokenPassing(path_graph(4))
        gamma = protocol.configuration({0: 1, 1: 1, 2: 1, 3: 1})
        simulator = Simulator(protocol, CentralDaemon("first"), rng=random.Random(0))
        seen = []

        def observe(configuration, index):
            seen.append(index)
            return False

        execution = simulator.run_until_terminal(gamma, max_steps=10, stop_when=observe)
        assert execution.is_terminal
        assert seen == list(range(execution.steps + 1))
        with pytest.raises(SimulationError):
            simulator.run_until_terminal(
                gamma, max_steps=10, stop_when=lambda config, index: index >= 1
            )

    def test_synchronous_runs_are_deterministic(self, unison_ring):
        gamma = unison_ring.random_configuration(random.Random(5))
        e1 = synchronous_execution(unison_ring, gamma, 30)
        e2 = synchronous_execution(unison_ring, gamma, 30)
        assert list(e1.configurations) == list(e2.configurations)

    def test_seeded_central_runs_are_deterministic(self, unison_ring):
        gamma = unison_ring.random_configuration(random.Random(5))
        runs = []
        for _ in range(2):
            simulator = Simulator(unison_ring, CentralDaemon(), rng=random.Random(42))
            runs.append(simulator.run(gamma, max_steps=40))
        assert list(runs[0].configurations) == list(runs[1].configurations)


class TestExecutionAccessors:
    @pytest.fixture
    def execution(self, unison_ring):
        gamma = unison_ring.random_configuration(random.Random(2))
        return synchronous_execution(unison_ring, gamma, 12)

    def test_lengths(self, execution):
        assert len(execution.configurations) == execution.steps + 1
        assert len(execution) == execution.steps

    def test_configuration_and_selection_bounds(self, execution):
        with pytest.raises(SimulationError):
            execution.configuration(execution.steps + 5)
        with pytest.raises(SimulationError):
            execution.selection(execution.steps)

    def test_prefix(self, execution):
        prefix = execution.prefix(4)
        assert prefix.steps == 4
        assert prefix.initial == execution.initial
        assert prefix.configuration(4) == execution.configuration(4)

    def test_prefix_out_of_range(self, execution):
        with pytest.raises(SimulationError):
            execution.prefix(execution.steps + 1)

    def test_suffix(self, execution):
        suffix = execution.suffix(3)
        assert suffix.steps == execution.steps - 3
        assert suffix.initial == execution.configuration(3)

    def test_restriction_matches_configurations(self, execution):
        restriction = execution.restriction(0)
        assert len(restriction) == execution.steps + 1
        assert restriction[0] == execution.initial[0]
        assert restriction[-1] == execution.final[0]

    def test_activated_steps_and_moves(self, execution):
        total = sum(len(execution.activated_steps(v)) for v in execution.initial)
        assert total == execution.moves()

    def test_rule_counts(self, execution):
        counts = execution.rule_counts()
        assert sum(counts.values()) == execution.moves()
        assert set(counts) <= {"NA", "CA", "RA"}

    def test_enabled_at(self, execution):
        assert isinstance(execution.enabled_at(0), frozenset)

    def test_repr(self, execution):
        assert "Execution(steps=" in repr(execution)


class TestRounds:
    def test_rounds_of_synchronous_execution_equal_steps(self, unison_ring):
        # Under the synchronous daemon every enabled vertex is activated at
        # every action, so every action closes a round.
        gamma = unison_ring.legitimate_configuration(0)
        execution = synchronous_execution(unison_ring, gamma, 10)
        assert execution.count_rounds() == 10

    def test_rounds_of_empty_execution(self, unison_ring):
        execution = synchronous_execution(unison_ring, unison_ring.legitimate_configuration(0), 0)
        assert execution.count_rounds() == 0

    def test_rounds_under_central_daemon_are_fewer_than_steps(self, unison_ring):
        gamma = unison_ring.legitimate_configuration(0)
        simulator = Simulator(unison_ring, CentralDaemon(), rng=random.Random(1))
        execution = simulator.run(gamma, max_steps=30)
        assert execution.count_rounds() <= execution.steps


class TestExecutionValidation:
    def test_constructor_consistency_checks(self):
        gamma = Configuration({0: 1})
        with pytest.raises(SimulationError):
            Execution([], [], [], [], truncated=True)
        with pytest.raises(SimulationError):
            Execution([gamma], [frozenset({0})], [], [], truncated=True)
