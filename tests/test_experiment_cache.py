"""Cache-correctness tests for the experiment drivers on the job layer.

The properties the service layer guarantees:

* running the same sweep spec twice against the same cache performs
  **zero simulation work** the second time (asserted with a counting stub
  around the trial kernel, not just timing);
* changing any spec field — or bumping a driver's ``CODE_VERSION`` — is a
  cache miss;
* a corrupted or truncated cache entry is recomputed, never a crash;
* sequential, process-parallel and kill-then-resume executions of a
  driver produce byte-identical reports.
"""

from __future__ import annotations

import json

import pytest

from repro.exceptions import ExperimentError
from repro.experiments import exact_small_n, theorem2_sync_upper
from repro.experiments.reporting import run_all_experiments
from repro.jobs import Dispatcher, ResultStore
from repro.jobs.dispatcher import execute_job

SWEEP = (("ring", 6), ("star", 5))
KW = dict(sweep=SWEEP, random_configurations_per_graph=2, seed=17)


def run_t2(dispatcher=None, **extra):
    kwargs = dict(KW, **extra)
    if dispatcher is not None:
        kwargs["dispatcher"] = dispatcher
    return theorem2_sync_upper.run_experiment(**kwargs)


class TestWarmCacheDoesNoWork:
    def test_second_run_skips_every_simulation(self, tmp_path, monkeypatch):
        calls = {"count": 0}
        real_trial = theorem2_sync_upper._run_sync_trial

        def counting_trial(*args, **kwargs):
            calls["count"] += 1
            return real_trial(*args, **kwargs)

        monkeypatch.setattr(theorem2_sync_upper, "_run_sync_trial", counting_trial)
        with Dispatcher(store=tmp_path) as dispatcher:
            cold = run_t2(dispatcher)
            cold_calls = calls["count"]
            assert cold_calls > 0
            warm = run_t2(dispatcher)
        assert calls["count"] == cold_calls, "warm run re-simulated something"
        assert dispatcher.last_stats.all_hits
        assert dispatcher.last_stats.executed == 0
        assert warm.to_markdown() == cold.to_markdown()

    def test_cache_shared_across_dispatchers(self, tmp_path):
        with Dispatcher(store=tmp_path) as dispatcher:
            run_t2(dispatcher)
        with Dispatcher(store=tmp_path) as dispatcher:
            run_t2(dispatcher)
            assert dispatcher.last_stats.all_hits


class TestCacheInvalidation:
    def test_changed_seed_misses(self, tmp_path):
        with Dispatcher(store=tmp_path) as dispatcher:
            run_t2(dispatcher)
            run_t2(dispatcher, seed=18)
            assert dispatcher.last_stats.hits == 0

    def test_changed_sweep_misses(self, tmp_path):
        with Dispatcher(store=tmp_path) as dispatcher:
            run_t2(dispatcher)
            theorem2_sync_upper.run_experiment(
                sweep=(("ring", 7),),
                random_configurations_per_graph=2,
                seed=17,
                dispatcher=dispatcher,
            )
            assert dispatcher.last_stats.hits == 0

    def test_code_version_bump_misses(self, tmp_path, monkeypatch):
        with Dispatcher(store=tmp_path) as dispatcher:
            run_t2(dispatcher)
        monkeypatch.setattr(theorem2_sync_upper, "CODE_VERSION", "theorem2/999")
        with Dispatcher(store=tmp_path) as dispatcher:
            run_t2(dispatcher)
            assert dispatcher.last_stats.hits == 0
            assert dispatcher.last_stats.executed == dispatcher.last_stats.total

    def test_refresh_recomputes_and_rewrites(self, tmp_path):
        with Dispatcher(store=tmp_path) as dispatcher:
            cold = run_t2(dispatcher)
        with Dispatcher(store=tmp_path, refresh=True) as dispatcher:
            refreshed = run_t2(dispatcher)
            assert dispatcher.last_stats.hits == 0
        assert refreshed.to_markdown() == cold.to_markdown()


class TestCacheDefects:
    def test_corrupted_entries_recomputed_not_crash(self, tmp_path):
        store = ResultStore(tmp_path)
        with Dispatcher(store=store) as dispatcher:
            cold = run_t2(dispatcher)
        # corrupt one entry, truncate another
        keys = list(store.keys())
        store.path_for(keys[0]).write_text("{not json", encoding="utf-8")
        raw = store.path_for(keys[1]).read_bytes()
        store.path_for(keys[1]).write_bytes(raw[: len(raw) // 2])
        with Dispatcher(store=store) as dispatcher:
            repaired = run_t2(dispatcher)
            assert dispatcher.last_stats.executed == 2
            assert dispatcher.last_stats.hits == dispatcher.last_stats.total - 2
        assert repaired.to_markdown() == cold.to_markdown()
        # the defective entries were rewritten
        assert store.get(keys[0]) is not None
        assert store.get(keys[1]) is not None


class TestExecutionModesAreByteIdentical:
    def test_sequential_parallel_resumed_cached_identical(self, tmp_path):
        sequential = run_t2().to_markdown()

        with Dispatcher(workers=4) as dispatcher:
            parallel = run_t2(dispatcher).to_markdown()
        assert parallel == sequential

        # kill-then-resume: half the jobs already sit in the store, as if a
        # previous sweep was interrupted midway
        store = ResultStore(tmp_path)
        _graphs, specs = theorem2_sync_upper.emit_jobs(**KW)
        for spec in specs[: len(specs) // 2]:
            store.put(spec, execute_job(spec.to_dict()))
        with Dispatcher(store=store) as dispatcher:
            resumed = run_t2(dispatcher).to_markdown()
            assert dispatcher.last_stats.hits == len(specs) // 2
        assert resumed == sequential

        # fully warm cache
        with Dispatcher(store=store) as dispatcher:
            cached = run_t2(dispatcher).to_markdown()
            assert dispatcher.last_stats.all_hits
        assert cached == sequential

    def test_exact_small_n_modes_identical(self, tmp_path):
        sequential = exact_small_n.run_experiment().to_markdown()
        parallel = exact_small_n.run_experiment(workers=4).to_markdown()
        with Dispatcher(store=tmp_path) as dispatcher:
            cold = exact_small_n.run_experiment(dispatcher=dispatcher).to_markdown()
            warm = exact_small_n.run_experiment(dispatcher=dispatcher).to_markdown()
            assert dispatcher.last_stats.all_hits
        assert sequential == parallel == cold == warm


class TestRunAllExperimentsPlumbing:
    def test_unknown_id_raises_experiment_error(self):
        with pytest.raises(ExperimentError) as info:
            run_all_experiments(only=["E3", "E99"])
        message = str(info.value)
        assert "E99" in message
        assert "E1" in message and "E8" in message

    def test_cache_path_plumbed_through(self, tmp_path):
        cache = tmp_path / "cache"
        (report,) = run_all_experiments(only=["E8"], cache=str(cache))
        assert cache.is_dir()
        assert len(ResultStore(cache)) > 0
        # second run: same report from a warm cache
        (again,) = run_all_experiments(only=["E8"], cache=str(cache))
        assert again.to_markdown() == report.to_markdown()

    def test_prebuilt_dispatcher_survives(self, tmp_path):
        with Dispatcher(store=tmp_path) as dispatcher:
            run_all_experiments(only=["E8"], dispatcher=dispatcher)
            # run_all_experiments must not close a dispatcher it was handed
            run_all_experiments(only=["E8"], dispatcher=dispatcher)
            assert dispatcher.last_stats.all_hits

    def test_progress_events_forwarded(self, tmp_path):
        events = []
        run_all_experiments(only=["E8"], cache=str(tmp_path), progress=events.append)
        assert any(event.kind == "done" for event in events)
