"""Tests for the experiment harness: report container, workloads, drivers.

The drivers are exercised on reduced sweeps so the whole file stays fast;
the full sweeps are what the benchmarks run.
"""

from __future__ import annotations

import random

import pytest

from repro.exceptions import ExperimentError
from repro.experiments import (
    EXPERIMENT_DRIVERS,
    ExperimentReport,
    dijkstra_comparison,
    figure1_clock,
    mutex_workload,
    perturbed_configurations,
    random_configurations,
    render_experiments_markdown,
    run_all_experiments,
    table_speculative_examples,
    theorem2_sync_upper,
    theorem3_async_upper,
    theorem4_lower_bound,
)
from repro.graphs import ring_graph
from repro.mutex import SSME


class TestExperimentReport:
    def test_report_rendering(self):
        report = ExperimentReport(
            experiment_id="EX",
            title="demo",
            paper_claim="claim",
            rows=[{"a": 1, "b": 2.5}],
            summary={"key": "value"},
            passed=True,
            notes=["a note"],
        )
        text = report.to_text()
        assert "[EX] demo" in text
        assert "claim" in text
        assert "verdict: PASS" in text
        markdown = report.to_markdown()
        assert "### EX" in markdown
        assert "| a | b |" in markdown
        assert "a note" in markdown
        assert "rows=1" in repr(report)

    def test_report_requires_id(self):
        with pytest.raises(ExperimentError):
            ExperimentReport("", "t", "c", [])

    def test_failed_report_renders_fail(self):
        report = ExperimentReport("EX", "t", "c", [], passed=False)
        assert "FAIL" in report.to_text()


class TestWorkloads:
    def test_random_configurations(self, rng):
        protocol = SSME(ring_graph(6))
        configs = random_configurations(protocol, 4, rng)
        assert len(configs) == 4
        with pytest.raises(ExperimentError):
            random_configurations(protocol, -1, rng)

    def test_perturbed_configurations(self, rng):
        protocol = SSME(ring_graph(6))
        base = protocol.legitimate_configuration(0)
        configs = perturbed_configurations(protocol, base, 5, rng, corrupted_vertices=2)
        assert len(configs) == 5
        for config in configs:
            differing = base.differing_vertices(config)
            assert len(differing) <= 2

    def test_perturbed_configurations_validation(self, rng):
        protocol = SSME(ring_graph(6))
        base = protocol.legitimate_configuration(0)
        with pytest.raises(ExperimentError):
            perturbed_configurations(protocol, base, -1, rng)
        with pytest.raises(ExperimentError):
            perturbed_configurations(protocol, base, 1, rng, corrupted_vertices=-1)

    def test_perturbed_with_zero_corruption_returns_base(self, rng):
        protocol = SSME(ring_graph(6))
        base = protocol.legitimate_configuration(0)
        configs = perturbed_configurations(protocol, base, 2, rng, corrupted_vertices=0)
        assert all(config == base for config in configs)

    def test_mutex_workload_contains_adversarial_configurations(self, rng):
        protocol = SSME(ring_graph(6))
        workload = mutex_workload(protocol, rng, random_count=2)
        assert len(workload) == 4


class TestDrivers:
    def test_e1_figure1(self):
        report = figure1_clock.run_experiment(ssme_sizes=[4, 6])
        assert report.passed
        assert report.experiment_id == "E1"
        assert len(report.rows) == 3

    def test_e2_speculative_examples(self):
        report = table_speculative_examples.run_experiment(
            dijkstra_sizes=[5, 9],
            bfs_sizes=[6, 12],
            matching_sizes=[6, 9],
            configurations_per_graph=4,
        )
        assert report.experiment_id == "E2"
        assert report.passed
        for row in report.rows:
            assert row["sync_steps"] <= row["unfair_steps"]

    def test_e3_theorem2(self):
        report = theorem2_sync_upper.run_experiment(
            sweep=[("ring", 6), ("path", 7), ("star", 8)],
            random_configurations_per_graph=3,
        )
        assert report.experiment_id == "E3"
        assert report.passed
        for row in report.rows:
            assert row["measured_worst_steps"] <= row["bound_ceil_diam_over_2"]
            assert row["reaches_bound"]

    def test_e4_theorem3(self):
        report = theorem3_async_upper.run_experiment(
            sweep=[("ring", 5), ("star", 5)],
            random_configurations_per_graph=2,
        )
        assert report.experiment_id == "E4"
        assert report.passed
        for row in report.rows:
            assert row["unison_worst_steps"] <= row["theorem3_bound"]
            assert row["mutex_worst_steps"] <= row["unison_worst_steps"]

    def test_e5_theorem4(self):
        report = theorem4_lower_bound.run_experiment(
            sweep=[("ring", 8), ("grid", 9)], dijkstra_rings=[10]
        )
        assert report.experiment_id == "E5"
        assert report.passed
        for row in report.rows:
            assert row["witnesses_found"] == row["delays_tested"]

    def test_e6_dijkstra_comparison(self):
        report = dijkstra_comparison.run_experiment(ring_sizes=[8, 12], configurations_per_graph=4)
        assert report.experiment_id == "E6"
        assert report.passed
        for row in report.rows:
            assert row["ssme_steps"] <= row["dijkstra_steps"]

    def test_e7_ablation_privilege_spacing(self):
        from repro.experiments import ablation_privilege_spacing

        report = ablation_privilege_spacing.run_experiment(path_sizes=[7, 9])
        assert report.experiment_id == "E7"
        assert report.passed
        for row in report.rows:
            assert row["safe_in_gamma1"] == (row["spacing"] > row["diam"])
            if not row["safe_in_gamma1"]:
                assert row["violations_per_period"] >= 1


class TestReporting:
    def test_driver_registry_is_complete(self):
        assert set(EXPERIMENT_DRIVERS) == {
            "E1",
            "E2",
            "E3",
            "E4",
            "E5",
            "E6",
            "E7",
            "E8",
            "E9",
            "E10",
        }

    def test_run_all_selected(self):
        reports = run_all_experiments(only=["E1"])
        assert len(reports) == 1
        assert reports[0].experiment_id == "E1"

    def test_render_markdown(self):
        reports = run_all_experiments(only=["E1"])
        markdown = render_experiments_markdown(reports)
        assert "# EXPERIMENTS" in markdown
        assert "### E1" in markdown
        assert "PASS" in markdown

    def test_unknown_experiment_id_is_a_clear_error(self):
        with pytest.raises(ExperimentError) as info:
            run_all_experiments(only=["E42"])
        message = str(info.value)
        assert "'E42'" in message
        # the error enumerates the valid ids
        for experiment_id in EXPERIMENT_DRIVERS:
            assert experiment_id in message

    def test_drivers_declare_capabilities(self):
        for driver in EXPERIMENT_DRIVERS.values():
            assert driver.capabilities <= {"dispatcher", "workers", "max_n", "horizon"}
        assert "dispatcher" in EXPERIMENT_DRIVERS["E3"].capabilities
        assert EXPERIMENT_DRIVERS["E1"].capabilities == frozenset()

    def test_report_dict_round_trip(self):
        (report,) = run_all_experiments(only=["E1"])
        rebuilt = ExperimentReport.from_dict(report.to_dict())
        assert rebuilt.to_markdown() == report.to_markdown()
        assert rebuilt.to_dict() == report.to_dict()
        with pytest.raises(ExperimentError):
            ExperimentReport.from_dict({"title": "no id"})
