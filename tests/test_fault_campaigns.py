"""Tests for the E9 fault-campaign driver, its jobs and the CLI."""

from __future__ import annotations

import json

import pytest

from repro.experiments import fault_campaigns
from repro.experiments.__main__ import scenarios_main
from repro.experiments.reporting import render_experiments_markdown, run_all_experiments
from repro.jobs import Dispatcher, ResultStore
from repro.scenarios import get_scenario, list_scenarios

SMOKE = [scenario.name for scenario in list_scenarios("smoke")]


class TestEmitJobs:
    def test_one_spec_per_scenario_in_name_order(self):
        infos, specs = fault_campaigns.emit_jobs(tier="smoke")
        assert [info["name"] for info in infos] == SMOKE
        assert len(specs) == len(SMOKE)
        for scenario_name, spec in zip(SMOKE, specs):
            scenario = get_scenario(scenario_name)
            assert spec.runner == "repro.experiments.fault_campaigns:run_job"
            assert spec.code_version == fault_campaigns.CODE_VERSION
            assert spec.protocol == scenario.protocol
            assert spec.seeds == (scenario.seed,)
            assert spec.horizon == scenario.horizon
            assert spec.param("scenario") == scenario.name

    def test_spec_keys_are_stable_and_distinct(self):
        _, first = fault_campaigns.emit_jobs(tier="smoke")
        _, second = fault_campaigns.emit_jobs(tier="smoke")
        assert [s.spec_key for s in first] == [s.spec_key for s in second]
        assert len({s.spec_key for s in first}) == len(first)

    def test_engine_changes_the_spec_key(self):
        _, auto = fault_campaigns.emit_jobs(scenarios=SMOKE[:1])
        _, ref = fault_campaigns.emit_jobs(scenarios=SMOKE[:1], engine="reference")
        assert auto[0].spec_key != ref[0].spec_key

    def test_accepts_scenario_objects_and_names(self):
        scenario = get_scenario(SMOKE[0])
        _, by_name = fault_campaigns.emit_jobs(scenarios=[SMOKE[0]])
        _, by_object = fault_campaigns.emit_jobs(scenarios=[scenario])
        assert by_name[0].spec_key == by_object[0].spec_key


class TestRunJob:
    def test_pure_function_of_the_spec(self):
        _, specs = fault_campaigns.emit_jobs(scenarios=[SMOKE[0]])
        first = fault_campaigns.run_job(specs[0])
        second = fault_campaigns.run_job(specs[0])
        assert json.dumps(first, sort_keys=True) == json.dumps(second, sort_keys=True)

    def test_matches_the_registry_run(self):
        scenario = get_scenario("smoke-unison-path6-churn")
        _, specs = fault_campaigns.emit_jobs(scenarios=[scenario])
        via_job = fault_campaigns.run_job(specs[0])
        direct = scenario.run().to_dict()
        assert json.dumps(via_job, sort_keys=True) == json.dumps(
            direct, sort_keys=True
        )

    def test_churn_scenario_changes_the_vertex_count(self):
        scenario = get_scenario("smoke-unison-path6-churn")
        _, specs = fault_campaigns.emit_jobs(scenarios=[scenario])
        result = fault_campaigns.run_job(specs[0])
        # One edge joins, one vertex leaves: n goes 6 -> 5, m 5 -> ...
        assert result["initial_n"] == 6
        assert result["final_n"] == 5


class TestScenarioPassed:
    def test_requires_final_safety(self):
        assert not fault_campaigns.scenario_passed(
            {"final_safe": False, "events": []}
        )

    def test_no_events_passes_when_safe(self):
        assert fault_campaigns.scenario_passed({"final_safe": True, "events": []})

    def test_last_event_must_have_recovered(self):
        events = [{"recovery_time": 3}, {"recovery_time": None}]
        assert not fault_campaigns.scenario_passed(
            {"final_safe": True, "events": events}
        )
        events[-1]["recovery_time"] = 0
        assert fault_campaigns.scenario_passed(
            {"final_safe": True, "events": events}
        )


class TestRunExperiment:
    def test_smoke_report_shape_and_pass(self):
        report = fault_campaigns.run_experiment(tier="smoke")
        assert report.experiment_id == "E9"
        assert report.passed
        assert [row["scenario"] for row in report.rows] == SMOKE
        assert report.summary["scenarios"] == len(SMOKE)
        assert report.summary["all_recovered_after_last_disruption"]
        for row in report.rows:
            assert 0.0 <= row["availability"] <= 1.0
            assert row["final_safe"]
            assert row["recovered_last"]

    def test_sequential_and_workers_are_byte_identical(self):
        sequential = fault_campaigns.run_experiment(tier="smoke")
        with Dispatcher(workers=2) as dispatcher:
            fanned = fault_campaigns.run_experiment(
                tier="smoke", dispatcher=dispatcher
            )
        assert render_experiments_markdown([sequential]) == render_experiments_markdown(
            [fanned]
        )

    def test_warm_cache_serves_all_hits(self, tmp_path):
        with Dispatcher(store=tmp_path) as dispatcher:
            cold = fault_campaigns.run_experiment(tier="smoke", dispatcher=dispatcher)
            assert not dispatcher.last_stats.all_hits
        with Dispatcher(store=tmp_path) as dispatcher:
            warm = fault_campaigns.run_experiment(tier="smoke", dispatcher=dispatcher)
            assert dispatcher.last_stats.all_hits
        assert render_experiments_markdown([cold]) == render_experiments_markdown(
            [warm]
        )

    def test_killed_then_resumed_report_is_byte_identical(self, tmp_path):
        """A campaign interrupted mid-grid resumes to the exact same report."""
        uninterrupted = render_experiments_markdown(
            [fault_campaigns.run_experiment(tier="smoke")]
        )
        # Simulate the kill: only part of the grid completed and was cached.
        store = ResultStore(tmp_path)
        _, specs = fault_campaigns.emit_jobs(tier="smoke")
        with Dispatcher(store=store) as dispatcher:
            dispatcher.run(specs[:1], label="E9")
        # The re-run picks the partial results out of the cache and
        # computes only the remainder.
        with Dispatcher(store=store) as dispatcher:
            resumed = fault_campaigns.run_experiment(
                tier="smoke", dispatcher=dispatcher
            )
            assert dispatcher.last_stats.hits >= 1
        assert render_experiments_markdown([resumed]) == uninterrupted

    def test_registered_with_the_harness(self, tmp_path):
        reports = run_all_experiments(only=["E9"], cache=str(tmp_path))
        assert len(reports) == 1
        assert reports[0].experiment_id == "E9"
        # E9 declares the dispatcher capability, so the harness's shared
        # cache applies: a second run is served entirely from it.
        again = run_all_experiments(only=["E9"], cache=str(tmp_path))
        assert render_experiments_markdown(reports) == render_experiments_markdown(
            again
        )


class TestScenariosCli:
    def test_list_names_every_scenario(self, capsys):
        assert scenarios_main(["list"]) == 0
        out = capsys.readouterr().out
        for scenario in list_scenarios():
            assert scenario.name in out
        assert f"{len(list_scenarios())} scenario(s)" in out

    def test_list_tier_filter(self, capsys):
        assert scenarios_main(["list", "--tier", "smoke"]) == 0
        out = capsys.readouterr().out
        assert f"{len(SMOKE)} scenario(s)" in out
        for name in SMOKE:
            assert name in out

    def test_run_prints_recovery_summary(self, capsys):
        assert scenarios_main(["run", "smoke-ssme-ring8-periodic"]) == 0
        out = capsys.readouterr().out
        assert "smoke-ssme-ring8-periodic" in out
        assert "availability=" in out
        assert "final_safe=True" in out

    def test_run_json_round_trips(self, capsys):
        assert (
            scenarios_main(
                ["run", "smoke-dijkstra-ring6-burst", "--engine", "reference", "--json"]
            )
            == 0
        )
        data = json.loads(capsys.readouterr().out)
        direct = get_scenario("smoke-dijkstra-ring6-burst").run(
            engine="reference"
        ).to_dict()
        assert data == direct

    def test_run_unknown_scenario_raises(self):
        from repro.exceptions import ExperimentError

        with pytest.raises(ExperimentError, match="unknown scenario"):
            scenarios_main(["run", "no-such-scenario"])
