"""Unit tests for the structured fault models."""

from __future__ import annotations

import random

import pytest

from repro.core import SynchronousDaemon, measure_stabilization
from repro.exceptions import ExperimentError
from repro.experiments.faults import (
    FAULT_MODELS,
    apply_fault,
    clock_skew_fault,
    global_fault,
    localized_burst_fault,
    single_vertex_fault,
)
from repro.graphs import grid_graph, ring_graph
from repro.mutex import SSME, DijkstraTokenRing, MutualExclusionSpec


@pytest.fixture
def protocol():
    return SSME(grid_graph(3, 4))


@pytest.fixture
def base(protocol):
    return protocol.legitimate_configuration(0)


class TestFaultModels:
    def test_single_vertex_fault_touches_at_most_one_vertex(self, protocol, base, rng):
        faulted = single_vertex_fault(protocol, base, rng)
        assert len(base.differing_vertices(faulted)) <= 1

    def test_localized_burst_is_spatially_correlated(self, protocol, base, rng):
        faulted = localized_burst_fault(protocol, base, rng, radius=1)
        touched = base.differing_vertices(faulted)
        if len(touched) >= 2:
            # All corrupted vertices are within 2 hops of each other (they
            # share an epicentre of radius 1).
            for u in touched:
                for v in touched:
                    assert protocol.graph.distance(u, v) <= 2

    def test_global_fault_is_reproducible(self, protocol, base):
        a = global_fault(protocol, base, random.Random(5))
        b = global_fault(protocol, base, random.Random(5))
        assert a == b

    def test_clock_skew_keeps_values_in_domain(self, protocol, base, rng):
        faulted = clock_skew_fault(protocol, base, rng, max_skew=5)
        for vertex in protocol.graph.vertices:
            assert protocol.clock.contains(faulted[vertex])

    def test_clock_skew_rejects_negative_skew(self, protocol, base, rng):
        with pytest.raises(ExperimentError):
            clock_skew_fault(protocol, base, rng, max_skew=-1)

    def test_clock_skew_on_clockless_protocol_raises_naming_it(self, rng):
        dijkstra = DijkstraTokenRing.on_ring(5)
        base = dijkstra.legitimate_configuration(0)
        with pytest.raises(ExperimentError, match="dijkstra-token-ring"):
            clock_skew_fault(dijkstra, base, rng)
        with pytest.raises(ExperimentError, match="DijkstraTokenRing"):
            apply_fault("clock-skew", dijkstra, base, rng)

    def test_localized_burst_accepts_precomputed_diameter(self, protocol, base):
        from repro.graphs import diameter

        diam = diameter(protocol.graph)
        with_diam = localized_burst_fault(
            protocol, base, random.Random(3), diam=diam
        )
        without = localized_burst_fault(protocol, base, random.Random(3))
        assert with_diam == without

    def test_localized_burst_ignores_diam_when_radius_given(self, protocol, base):
        # An absurd precomputed diameter must not matter once the radius is
        # explicit — the diameter is only a radius default.
        a = localized_burst_fault(protocol, base, random.Random(4), radius=1, diam=10**6)
        b = localized_burst_fault(protocol, base, random.Random(4), radius=1)
        assert a == b

    def test_single_vertex_fault_count(self, protocol, base):
        faulted = single_vertex_fault(protocol, base, random.Random(9), count=4)
        assert len(base.differing_vertices(faulted)) <= 4
        with pytest.raises(ExperimentError):
            single_vertex_fault(protocol, base, random.Random(9), count=0)

    def test_apply_fault_by_name(self, protocol, base, rng):
        for name in FAULT_MODELS:
            faulted = apply_fault(name, protocol, base, rng)
            assert set(faulted) == set(base)

    def test_apply_unknown_fault(self, protocol, base, rng):
        with pytest.raises(ExperimentError):
            apply_fault("cosmic-ray", protocol, base, rng)

    def test_unknown_fault_message_lists_known_models(self, protocol, base, rng):
        with pytest.raises(ExperimentError, match="single-vertex"):
            apply_fault("cosmic-ray", protocol, base, rng)

    def test_apply_fault_threads_explicit_params(self, protocol, base):
        direct = localized_burst_fault(protocol, base, random.Random(21), radius=1)
        via_apply = apply_fault(
            "localized-burst", protocol, base, random.Random(21), params={"radius": 1}
        )
        assert via_apply == direct
        skew = apply_fault(
            "clock-skew", protocol, base, random.Random(5), params={"max_skew": 0}
        )
        assert skew == base

    def test_apply_fault_unknown_param_lists_valid_keys(self, protocol, base, rng):
        with pytest.raises(ExperimentError, match=r"radius"):
            apply_fault(
                "localized-burst", protocol, base, rng, params={"radiis": 1}
            )
        # A parameterless model reports that it accepts none.
        with pytest.raises(ExperimentError, match="none"):
            apply_fault("global", protocol, base, rng, params={"radius": 1})

    def test_every_model_is_deterministic_under_a_fixed_rng(self, protocol, base):
        for name in FAULT_MODELS:
            first = apply_fault(name, protocol, base, random.Random(77))
            second = apply_fault(name, protocol, base, random.Random(77))
            assert first == second, name

    def test_every_model_leaves_base_untouched(self, protocol, base, rng):
        snapshot = base.as_dict()
        for name in FAULT_MODELS:
            apply_fault(name, protocol, base, rng)
        assert base.as_dict() == snapshot

    def test_corruption_footprint_per_model(self, protocol, base, rng):
        n = protocol.graph.n
        for _ in range(5):
            touched = len(base.differing_vertices(single_vertex_fault(protocol, base, rng)))
            assert touched <= 1
            # A radius-1 burst cannot exceed the largest closed neighbourhood.
            max_ball = max(
                len(protocol.graph.ball(v, 1)) for v in protocol.graph.vertices
            )
            touched = len(
                base.differing_vertices(localized_burst_fault(protocol, base, rng, radius=1))
            )
            assert touched <= max_ball
            touched = len(base.differing_vertices(global_fault(protocol, base, rng)))
            assert touched <= n
            touched = len(
                base.differing_vertices(clock_skew_fault(protocol, base, rng, max_skew=2))
            )
            assert touched <= n

    def test_zero_skew_is_a_no_op(self, protocol, base, rng):
        assert clock_skew_fault(protocol, base, rng, max_skew=0) == base

    def test_faulted_states_stay_valid(self, protocol, base, rng):
        for name in FAULT_MODELS:
            faulted = apply_fault(name, protocol, base, rng)
            for vertex in protocol.graph.vertices:
                protocol.validate_state(vertex, faulted[vertex])


class TestRecoveryFromEveryFaultModel:
    def test_ssme_recovers_within_theorem2_bound(self, protocol, base, rng):
        spec = MutualExclusionSpec(protocol)
        bound = protocol.synchronous_stabilization_bound()
        for name in FAULT_MODELS:
            faulted = apply_fault(name, protocol, base, rng)
            measurement = measure_stabilization(
                protocol,
                SynchronousDaemon(),
                faulted,
                spec,
                horizon=protocol.K + 4 * protocol.alpha,
            )
            assert measurement.stabilized, name
            assert measurement.stabilization_steps <= bound, name
