"""Unit tests for the immutable Graph type."""

from __future__ import annotations

import pytest

from repro.exceptions import GraphError
from repro.graphs import Graph, ring_graph


class TestConstruction:
    def test_basic_construction(self):
        g = Graph([0, 1, 2], [(0, 1), (1, 2)])
        assert g.n == 3
        assert g.m == 2
        assert g.has_edge(0, 1)
        assert g.has_edge(1, 0)
        assert not g.has_edge(0, 2)

    def test_duplicate_vertices_are_ignored(self):
        g = Graph([0, 1, 1, 0], [(0, 1)])
        assert g.n == 2

    def test_duplicate_edges_are_collapsed(self):
        g = Graph([0, 1], [(0, 1), (1, 0), (0, 1)])
        assert g.m == 1

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError):
            Graph([0, 1], [(0, 0)])

    def test_edge_with_unknown_vertex_rejected(self):
        with pytest.raises(GraphError):
            Graph([0, 1], [(0, 2)])

    def test_empty_graph(self):
        g = Graph([], [])
        assert g.n == 0
        assert g.m == 0
        assert g.is_connected()

    def test_non_integer_vertex_labels(self):
        g = Graph(["a", "b", "c"], [("a", "b"), ("b", "c")])
        assert g.distance("a", "c") == 2


class TestAccessors:
    def test_neighbors(self):
        g = Graph([0, 1, 2], [(0, 1), (1, 2)])
        assert g.neighbors(1) == frozenset({0, 2})
        assert g.neighbors(0) == frozenset({1})

    def test_neighbors_unknown_vertex(self):
        g = Graph([0], [])
        with pytest.raises(GraphError):
            g.neighbors(7)

    def test_degree(self):
        g = Graph([0, 1, 2], [(0, 1), (0, 2)])
        assert g.degree(0) == 2
        assert g.degree(1) == 1

    def test_contains_and_iteration(self):
        g = Graph([0, 1, 2], [(0, 1)])
        assert 0 in g
        assert 7 not in g
        assert sorted(g) == [0, 1, 2]
        assert len(g) == 3

    def test_contains_unhashable(self):
        g = Graph([0], [])
        assert [1, 2] not in g

    def test_equality_and_hash(self):
        g1 = Graph([0, 1, 2], [(0, 1), (1, 2)])
        g2 = Graph([2, 1, 0], [(1, 2), (0, 1)])
        assert g1 == g2
        assert hash(g1) == hash(g2)
        g3 = Graph([0, 1, 2], [(0, 1)])
        assert g1 != g3

    def test_repr(self):
        assert repr(Graph([0, 1], [(0, 1)])) == "Graph(n=2, m=1)"

    def test_sorted_vertices(self):
        g = Graph([3, 1, 2], [(1, 2), (2, 3)])
        assert list(g.sorted_vertices()) == [1, 2, 3]


class TestTraversal:
    def test_bfs_distances(self):
        g = ring_graph(6)
        dist = g.bfs_distances(0)
        assert dist[0] == 0
        assert dist[3] == 3
        assert dist[5] == 1

    def test_bfs_unknown_source(self):
        with pytest.raises(GraphError):
            ring_graph(4).bfs_distances(99)

    def test_distance(self):
        g = ring_graph(8)
        assert g.distance(0, 4) == 4
        assert g.distance(0, 7) == 1

    def test_distance_disconnected(self):
        g = Graph([0, 1, 2], [(0, 1)])
        with pytest.raises(GraphError):
            g.distance(0, 2)

    def test_ball(self):
        g = ring_graph(8)
        assert g.ball(0, 0) == frozenset({0})
        assert g.ball(0, 1) == frozenset({0, 1, 7})
        assert g.ball(0, 2) == frozenset({0, 1, 2, 6, 7})

    def test_ball_negative_radius(self):
        with pytest.raises(GraphError):
            ring_graph(4).ball(0, -1)

    def test_is_connected(self):
        assert ring_graph(5).is_connected()
        assert not Graph([0, 1, 2], [(0, 1)]).is_connected()

    def test_connected_components(self):
        g = Graph([0, 1, 2, 3], [(0, 1), (2, 3)])
        components = {frozenset(c) for c in g.connected_components()}
        assert components == {frozenset({0, 1}), frozenset({2, 3})}


class TestDerivedGraphs:
    def test_subgraph(self):
        g = ring_graph(6)
        sub = g.subgraph([0, 1, 2])
        assert sub.n == 3
        assert sub.m == 2
        assert sub.has_edge(0, 1)
        assert not sub.has_edge(0, 2)

    def test_subgraph_unknown_vertex(self):
        with pytest.raises(GraphError):
            ring_graph(4).subgraph([0, 9])

    def test_with_edge(self):
        g = Graph([0, 1, 2], [(0, 1)])
        g2 = g.with_edge(1, 2)
        assert g2.has_edge(1, 2)
        assert not g.has_edge(1, 2)  # original untouched

    def test_without_edge(self):
        g = ring_graph(4)
        g2 = g.without_edge(0, 1)
        assert not g2.has_edge(0, 1)
        assert g.has_edge(0, 1)

    def test_without_missing_edge(self):
        with pytest.raises(GraphError):
            ring_graph(4).without_edge(0, 2)

    def test_relabel(self):
        g = Graph([0, 1], [(0, 1)])
        g2 = g.relabel({0: "a", 1: "b"})
        assert g2.has_edge("a", "b")

    def test_relabel_must_cover_everything(self):
        with pytest.raises(GraphError):
            Graph([0, 1], [(0, 1)]).relabel({0: "a"})

    def test_relabel_must_be_injective(self):
        with pytest.raises(GraphError):
            Graph([0, 1], [(0, 1)]).relabel({0: "a", 1: "a"})
