"""Unit tests for the topology generators."""

from __future__ import annotations

import random

import pytest

from repro.exceptions import GraphError
from repro.graphs import (
    TOPOLOGY_GENERATORS,
    binary_tree_graph,
    caterpillar_graph,
    complete_bipartite_graph,
    complete_graph,
    erdos_renyi_graph,
    grid_graph,
    hypercube_graph,
    is_ring,
    is_tree,
    lollipop_graph,
    make_topology,
    path_graph,
    petersen_graph,
    random_connected_graph,
    random_tree_graph,
    ring_graph,
    single_vertex_graph,
    star_graph,
    torus_graph,
    wheel_graph,
)


class TestBasicShapes:
    def test_single_vertex(self):
        g = single_vertex_graph()
        assert g.n == 1 and g.m == 0

    def test_ring(self):
        g = ring_graph(7)
        assert g.n == 7 and g.m == 7
        assert is_ring(g)
        assert all(g.degree(v) == 2 for v in g.vertices)

    def test_ring_degenerate_sizes(self):
        assert ring_graph(1).n == 1
        g2 = ring_graph(2)
        assert g2.n == 2 and g2.m == 1

    def test_path(self):
        g = path_graph(6)
        assert g.n == 6 and g.m == 5
        assert is_tree(g)
        assert g.distance(0, 5) == 5

    def test_star(self):
        g = star_graph(7)
        assert g.degree(0) == 6
        assert all(g.degree(v) == 1 for v in range(1, 7))
        assert is_tree(g)

    def test_complete(self):
        g = complete_graph(5)
        assert g.m == 10
        assert all(g.degree(v) == 4 for v in g.vertices)

    def test_complete_bipartite(self):
        g = complete_bipartite_graph(2, 3)
        assert g.n == 5 and g.m == 6
        assert not g.has_edge(0, 1)
        assert g.has_edge(0, 2)

    def test_wheel(self):
        g = wheel_graph(6)
        assert g.degree(0) == 5
        assert all(g.degree(v) == 3 for v in range(1, 6))


class TestGridsAndCubes:
    def test_grid(self):
        g = grid_graph(3, 4)
        assert g.n == 12
        assert g.m == 3 * 3 + 2 * 4  # horizontal + vertical edges
        assert g.distance(0, 11) == 5

    def test_torus(self):
        g = torus_graph(3, 3)
        assert g.n == 9
        assert all(g.degree(v) == 4 for v in g.vertices)

    def test_torus_rejects_small(self):
        with pytest.raises(GraphError):
            torus_graph(2, 3)

    def test_hypercube(self):
        g = hypercube_graph(3)
        assert g.n == 8 and g.m == 12
        assert all(g.degree(v) == 3 for v in g.vertices)
        assert g.distance(0, 7) == 3

    def test_hypercube_dimension_zero(self):
        assert hypercube_graph(0).n == 1


class TestTreesAndRandom:
    def test_binary_tree(self):
        g = binary_tree_graph(7)
        assert is_tree(g)
        assert g.degree(0) == 2

    def test_random_tree_is_tree(self):
        g = random_tree_graph(20, random.Random(3))
        assert is_tree(g)

    def test_caterpillar(self):
        g = caterpillar_graph(4, 2)
        assert g.n == 4 + 8
        assert is_tree(g)

    def test_lollipop(self):
        g = lollipop_graph(4, 3)
        assert g.n == 7
        assert g.distance(0, 6) == 4

    def test_erdos_renyi_determinism(self):
        g1 = erdos_renyi_graph(10, 0.3, random.Random(7))
        g2 = erdos_renyi_graph(10, 0.3, random.Random(7))
        assert g1 == g2

    def test_erdos_renyi_probability_validation(self):
        with pytest.raises(GraphError):
            erdos_renyi_graph(5, 1.5)

    def test_random_connected_is_connected(self):
        for seed in range(5):
            g = random_connected_graph(15, 0.1, random.Random(seed))
            assert g.is_connected()

    def test_petersen(self):
        g = petersen_graph()
        assert g.n == 10 and g.m == 15
        assert all(g.degree(v) == 3 for v in g.vertices)


class TestTopologyRegistry:
    @pytest.mark.parametrize("name", sorted(TOPOLOGY_GENERATORS))
    def test_every_registered_topology_is_connected(self, name):
        g = make_topology(name, 9)
        assert g.n >= 1
        assert g.is_connected()

    def test_unknown_topology(self):
        with pytest.raises(GraphError):
            make_topology("moebius", 8)

    def test_vertices_are_consecutive_integers(self):
        for name in TOPOLOGY_GENERATORS:
            g = make_topology(name, 8)
            assert set(g.vertices) == set(range(g.n))
