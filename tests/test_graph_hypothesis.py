"""Property-based tests on graphs and their structural parameters."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import (
    cyclomatic_characteristic_upper_bound,
    diameter,
    diameter_endpoints,
    eccentricity,
    graph_from_dict,
    graph_to_dict,
    hole_length,
    longest_chordless_path_length,
    radius,
    random_connected_graph,
)


def connected_graphs():
    """Strategy producing small connected random graphs."""
    return st.tuples(st.integers(2, 12), st.floats(0.0, 0.6), st.integers(0, 10_000)).map(
        lambda params: random_connected_graph(params[0], params[1], random.Random(params[2]))
    )


@settings(max_examples=30, deadline=None)
@given(connected_graphs())
def test_radius_diameter_relationship(graph):
    r, d = radius(graph), diameter(graph)
    assert r <= d <= 2 * r


@settings(max_examples=30, deadline=None)
@given(connected_graphs())
def test_diameter_endpoints_achieve_the_diameter(graph):
    u, v = diameter_endpoints(graph)
    assert graph.distance(u, v) == diameter(graph)


@settings(max_examples=30, deadline=None)
@given(connected_graphs())
def test_eccentricity_bounds(graph):
    d = diameter(graph)
    for vertex in graph.vertices:
        assert 0 <= eccentricity(graph, vertex) <= d


@settings(max_examples=25, deadline=None)
@given(connected_graphs())
def test_hole_and_cyclo_are_bounded_by_n(graph):
    assert 2 <= hole_length(graph) <= max(2, graph.n)
    assert 2 <= cyclomatic_characteristic_upper_bound(graph) <= max(2, graph.n)


@settings(max_examples=25, deadline=None)
@given(connected_graphs())
def test_lcp_is_bounded(graph):
    lcp = longest_chordless_path_length(graph)
    assert 0 <= lcp <= graph.n


@settings(max_examples=30, deadline=None)
@given(connected_graphs())
def test_serialization_round_trip(graph):
    assert graph_from_dict(graph_to_dict(graph)) == graph


@settings(max_examples=30, deadline=None)
@given(connected_graphs())
def test_bfs_distance_triangle_inequality(graph):
    vertices = list(graph.vertices)[:5]
    for a in vertices:
        dist_a = graph.bfs_distances(a)
        for b in vertices:
            dist_b = graph.bfs_distances(b)
            for c in vertices:
                assert dist_a[c] <= dist_a[b] + dist_b[c]
