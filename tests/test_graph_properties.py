"""Unit tests for structural graph properties (diameter, holes, cyclo, lcp)."""

from __future__ import annotations

import pytest

from repro.exceptions import GraphError
from repro.graphs import (
    Graph,
    all_pairs_distances,
    center,
    complete_graph,
    cyclomatic_characteristic_upper_bound,
    cyclomatic_number,
    diameter,
    diameter_endpoints,
    eccentricity,
    fundamental_cycles,
    girth,
    grid_graph,
    has_cycle,
    hole_length,
    is_ring,
    is_tree,
    longest_chordless_path_length,
    lollipop_graph,
    path_graph,
    petersen_graph,
    profile,
    radius,
    ring_graph,
    star_graph,
)


class TestDistances:
    def test_diameter_ring(self):
        assert diameter(ring_graph(8)) == 4
        assert diameter(ring_graph(9)) == 4

    def test_diameter_path_and_star(self):
        assert diameter(path_graph(7)) == 6
        assert diameter(star_graph(9)) == 2
        assert diameter(complete_graph(5)) == 1

    def test_diameter_single_vertex(self):
        assert diameter(Graph([0], [])) == 0

    def test_diameter_requires_connected(self):
        with pytest.raises(GraphError):
            diameter(Graph([0, 1], []))

    def test_diameter_endpoints(self):
        u, v = diameter_endpoints(path_graph(6))
        assert {u, v} == {0, 5}

    def test_eccentricity_and_radius(self):
        g = path_graph(5)
        assert eccentricity(g, 0) == 4
        assert eccentricity(g, 2) == 2
        assert radius(g) == 2
        assert center(g) == [2]

    def test_all_pairs(self):
        g = ring_graph(6)
        dist = all_pairs_distances(g)
        assert dist[0][3] == 3
        assert dist[3][0] == 3


class TestCycles:
    def test_girth(self):
        assert girth(ring_graph(7)) == 7
        assert girth(complete_graph(4)) == 3
        assert girth(path_graph(5)) is None
        assert girth(petersen_graph()) == 5

    def test_has_cycle(self):
        assert has_cycle(ring_graph(4))
        assert not has_cycle(path_graph(4))

    def test_is_tree_and_is_ring(self):
        assert is_tree(path_graph(4))
        assert not is_tree(ring_graph(4))
        assert is_ring(ring_graph(5))
        assert not is_ring(star_graph(5))
        assert not is_ring(Graph([0, 1], [(0, 1)]))

    def test_cyclomatic_number(self):
        assert cyclomatic_number(path_graph(5)) == 0
        assert cyclomatic_number(ring_graph(5)) == 1
        assert cyclomatic_number(complete_graph(4)) == 3

    def test_fundamental_cycles_count(self):
        g = complete_graph(4)
        cycles = fundamental_cycles(g)
        assert len(cycles) == cyclomatic_number(g)
        for cycle in cycles:
            assert len(cycle) >= 3
            # consecutive cycle vertices are adjacent
            for a, b in zip(cycle, cycle[1:] + cycle[:1]):
                assert g.has_edge(a, b)


class TestHoleAndLcp:
    def test_hole_of_tree_is_two(self):
        assert hole_length(path_graph(6)) == 2
        assert hole_length(star_graph(6)) == 2

    def test_hole_of_ring_is_n(self):
        assert hole_length(ring_graph(7)) == 7

    def test_hole_of_complete_graph_is_triangle(self):
        assert hole_length(complete_graph(6)) == 3

    def test_hole_of_petersen(self):
        # Petersen: girth 5 and every chordless cycle has length 5 or 6;
        # the longest hole is 6.
        assert hole_length(petersen_graph()) == 6

    def test_hole_of_grid(self):
        # In the 2x3 grid the outer 6-cycle has the middle rung as a chord,
        # so the longest hole is a unit square; in the 3x3 grid the outer
        # 8-cycle avoids the centre vertex and is chordless.
        assert hole_length(grid_graph(2, 3)) == 4
        assert hole_length(grid_graph(3, 3)) == 8

    def test_cyclo_upper_bound(self):
        assert cyclomatic_characteristic_upper_bound(path_graph(5)) == 2
        assert cyclomatic_characteristic_upper_bound(ring_graph(6)) == 6
        assert cyclomatic_characteristic_upper_bound(complete_graph(5)) <= 5

    def test_lcp_path(self):
        # The whole path is chordless: lcp = n - 1 edges.
        assert longest_chordless_path_length(path_graph(6)) == 5

    def test_lcp_complete_graph(self):
        # Any path of 2 edges in a complete graph has a chord.
        assert longest_chordless_path_length(complete_graph(5)) == 1

    def test_lcp_ring(self):
        # Removing one vertex of the cycle leaves a chordless path.
        assert longest_chordless_path_length(ring_graph(6)) == 4


class TestProfile:
    def test_profile_ring(self):
        p = profile(ring_graph(6))
        assert p.n == 6
        assert p.m == 6
        assert p.diameter == 3
        assert p.girth == 6
        assert p.hole == 6
        assert not p.is_tree
        assert p.is_ring
        d = p.as_dict()
        assert d["diameter"] == 3

    def test_profile_without_exact_np_hard(self):
        p = profile(lollipop_graph(4, 3), exact_np_hard=False)
        assert p.hole is None
        assert p.lcp is None
        assert p.cyclo_upper_bound is not None

    def test_profile_requires_connected(self):
        with pytest.raises(GraphError):
            profile(Graph([0, 1], []))
