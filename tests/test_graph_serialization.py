"""Unit tests for graph serialization helpers."""

from __future__ import annotations

import pytest

from repro.exceptions import GraphError
from repro.graphs import (
    Graph,
    adjacency_matrix,
    graph_from_dict,
    graph_from_edge_list,
    graph_to_dict,
    graph_to_dot,
    graph_to_edge_list,
    petersen_graph,
    ring_graph,
)


class TestDictRoundTrip:
    def test_round_trip(self):
        g = petersen_graph()
        assert graph_from_dict(graph_to_dict(g)) == g

    def test_dict_shape(self):
        data = graph_to_dict(ring_graph(3))
        assert set(data) == {"vertices", "edges"}
        assert sorted(data["vertices"]) == [0, 1, 2]
        assert all(len(edge) == 2 for edge in data["edges"])

    def test_missing_keys(self):
        with pytest.raises(GraphError):
            graph_from_dict({"vertices": [0]})

    def test_isolated_vertices_survive(self):
        g = Graph([0, 1, 2], [(0, 1)])
        assert graph_from_dict(graph_to_dict(g)) == g


class TestEdgeList:
    def test_round_trip_for_graphs_without_isolated_vertices(self):
        g = ring_graph(5)
        assert graph_from_edge_list(graph_to_edge_list(g)) == g

    def test_edge_list_is_sorted(self):
        edges = graph_to_edge_list(ring_graph(4))
        assert edges == sorted(edges, key=repr)


class TestDotAndMatrix:
    def test_dot_output(self):
        text = graph_to_dot(ring_graph(3), name="ring")
        assert text.startswith("graph ring {")
        assert text.count("--") == 3
        assert text.endswith("}")

    def test_adjacency_matrix(self):
        g = ring_graph(4)
        matrix = adjacency_matrix(g)
        assert len(matrix) == 4
        assert all(sum(row) == 2 for row in matrix)
        for i in range(4):
            for j in range(4):
                assert matrix[i][j] == matrix[j][i]
                assert matrix[i][j] == (1 if g.has_edge(g.vertices[i], g.vertices[j]) else 0)
