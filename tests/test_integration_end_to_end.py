"""End-to-end integration tests crossing every layer of the library.

Each scenario exercises the full stack — graph generation, protocol
construction, daemon scheduling, execution, specification checking,
measurement, and reporting — the way a downstream user would.
"""

from __future__ import annotations

import random

import pytest

from repro import (
    SSME,
    DijkstraTokenRing,
    DistributedDaemon,
    MutualExclusionSpec,
    Simulator,
    StarvationDaemon,
    SynchronousDaemon,
)
from repro.analysis import format_table
from repro.core import measure_stabilization, observed_stabilization_index
from repro.experiments import mutex_workload
from repro.graphs import diameter, make_topology, random_connected_graph
from repro.lowerbound import construct_double_privilege_witness
from repro.mutex import critical_section_counts, service_metrics
from repro.unison import AsynchronousUnisonSpec


class TestFullPipelineOnRandomTopology:
    def test_fault_injection_recovery_and_service(self):
        rng = random.Random(2024)
        graph = random_connected_graph(14, 0.15, random.Random(7))
        protocol = SSME(graph)
        spec = MutualExclusionSpec(protocol)

        # 1. Start from a legitimate configuration and inject a fault burst.
        gamma = protocol.legitimate_configuration(5)
        corrupted = gamma.updated(
            {v: protocol.random_state(v, rng) for v in list(graph.vertices)[: graph.n // 2]}
        )

        # 2. Recover under the synchronous daemon within the Theorem 2 bound.
        horizon = protocol.K + 4 * protocol.alpha
        execution = Simulator(protocol, SynchronousDaemon()).run(corrupted, max_steps=horizon)
        steps = observed_stabilization_index(execution, spec, protocol)
        assert steps is not None
        assert steps <= protocol.synchronous_stabilization_bound()

        # 3. After stabilization the service is live and fair.
        metrics = service_metrics(execution, protocol, start=steps)
        assert metrics.starved_vertices == []
        assert metrics.jains_fairness > 0.8

        # 4. The same corrupted configuration also recovers under an
        #    asynchronous, unfair-style daemon (Theorem 1).
        async_execution = Simulator(
            protocol, StarvationDaemon(), rng=random.Random(1)
        ).run(
            corrupted,
            max_steps=40 * graph.n * (protocol.alpha + protocol.diam),
            stop_when=lambda config, index: protocol.is_legitimate(config),
        )
        assert protocol.is_legitimate(async_execution.final)

    def test_lower_bound_and_upper_bound_meet(self):
        """The measured worst case, the Theorem 2 bound and the Theorem 4
        witnesses agree on every sampled topology."""
        rng = random.Random(5)
        for topology in ("ring", "path", "grid", "binary_tree"):
            graph = make_topology(topology, 9)
            protocol = SSME(graph)
            spec = MutualExclusionSpec(protocol)
            bound = protocol.synchronous_stabilization_bound()

            worst = 0
            for gamma in mutex_workload(protocol, rng, random_count=3):
                measurement = measure_stabilization(
                    protocol, SynchronousDaemon(), gamma, spec,
                    horizon=protocol.K + 4 * protocol.alpha,
                )
                assert measurement.stabilized
                worst = max(worst, measurement.stabilization_steps)
            assert worst == bound

            if bound >= 1:
                witness = construct_double_privilege_witness(protocol, bound - 1)
                assert witness.success


class TestCrossProtocolComparison:
    def test_ssme_beats_dijkstra_on_synchronous_rings(self):
        rng = random.Random(11)
        rows = []
        for n in (8, 16):
            graph = make_topology("ring", n)
            ssme = SSME(graph)
            ssme_spec = MutualExclusionSpec(ssme)
            ssme_worst = max(
                measure_stabilization(
                    ssme, SynchronousDaemon(), gamma, ssme_spec,
                    horizon=ssme.K + 4 * ssme.alpha,
                ).stabilization_steps
                for gamma in mutex_workload(ssme, rng, random_count=3)
            )
            dijkstra = DijkstraTokenRing(graph)
            dijkstra_spec = MutualExclusionSpec(dijkstra)
            dijkstra_worst = max(
                measure_stabilization(
                    dijkstra, SynchronousDaemon(), dijkstra.random_configuration(rng),
                    dijkstra_spec, horizon=8 * n,
                ).stabilization_steps
                for _ in range(4)
            )
            rows.append({"n": n, "ssme": ssme_worst, "dijkstra": dijkstra_worst})
            assert ssme_worst <= dijkstra_worst
        # The report renders (sanity check of the analysis layer).
        assert "ssme" in format_table(rows)

    def test_unison_convergence_feeds_mutex_convergence(self):
        """spec_ME stabilization never happens after spec_AU stabilization
        on the same trace — the structure behind Theorems 1 and 3."""
        graph = make_topology("grid", 9)
        protocol = SSME(graph)
        mutex_spec = MutualExclusionSpec(protocol)
        unison_spec = AsynchronousUnisonSpec(protocol)
        rng = random.Random(3)
        for _ in range(3):
            gamma = protocol.random_configuration(rng)
            execution = Simulator(
                protocol, DistributedDaemon(0.5), rng=random.Random(rng.randrange(2**32))
            ).run(
                gamma,
                max_steps=60 * graph.n * graph.n,
                stop_when=lambda config, index: protocol.is_legitimate(config),
            )
            assert protocol.is_legitimate(execution.final)
            mutex_steps = observed_stabilization_index(execution, mutex_spec, protocol)
            unison_steps = observed_stabilization_index(execution, unison_spec, protocol)
            assert mutex_steps is not None and unison_steps is not None
            assert mutex_steps <= unison_steps
