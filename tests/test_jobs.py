"""Tests for the experiment service layer (:mod:`repro.jobs`).

Covers the four layers in isolation — specs (identity, hashing,
round-trips), the worker pool (ordering, error context), the result
store and journal (atomicity, corruption tolerance, resume bookkeeping)
and the dispatcher (hit/miss partitioning, stats, normalization) — plus
the cache-correctness properties the whole design exists for: a warm
cache re-simulates nothing, any spec field change misses, and defective
entries are recomputed rather than crashing.
"""

import json
import os

import pytest

from repro.exceptions import JobError
from repro.jobs import (
    DispatchStats,
    Dispatcher,
    Journal,
    JobSpec,
    ProgressEvent,
    ResultStore,
    WorkerPool,
    canonical_json,
    execute_job,
    freeze,
)


def make_spec(**overrides):
    base = dict(
        runner="tests.test_jobs:dummy_runner",
        code_version="dummy/1",
        protocol="ssme",
        graph={"topology": "ring", "size": 6},
        daemon="synchronous",
        seeds=(11, 22),
        horizon=100,
        metrics=("steps",),
        params={"engine": "auto", "flag": True},
    )
    base.update(overrides)
    return JobSpec(**base)


def dummy_runner(spec):
    """Module-level runner used by dispatcher tests (picklable)."""
    return {"echo": spec.protocol, "seeds": list(spec.seeds)}


def failing_runner(spec):
    raise RuntimeError("boom")


class TestFreeze:
    def test_mapping_becomes_sorted_pairs(self):
        assert freeze({"b": 1, "a": 2}) == (("a", 2), ("b", 1))

    def test_nested_lists_become_tuples(self):
        assert freeze({"xs": [1, [2, 3]]}) == (("xs", (1, (2, 3))),)

    def test_sets_are_sorted(self):
        assert freeze({3, 1, 2}) == (1, 2, 3)

    def test_scalars_pass_through(self):
        for value in (None, True, 3, 2.5, "s"):
            assert freeze(value) == value

    def test_unfreezable_value_raises(self):
        with pytest.raises(JobError):
            freeze(object())

    def test_frozen_values_are_hashable(self):
        hash(freeze({"a": [1, {"b": 2}]}))


class TestJobSpec:
    def test_specs_are_frozen_and_hashable(self):
        spec = make_spec()
        assert spec == make_spec()
        assert hash(spec) == hash(make_spec())
        with pytest.raises(Exception):
            spec.protocol = "other"

    def test_round_trip_through_json(self):
        spec = make_spec()
        data = json.loads(json.dumps(spec.to_dict()))
        rebuilt = JobSpec.from_dict(data)
        assert rebuilt == spec
        assert rebuilt.spec_key == spec.spec_key

    def test_spec_key_is_stable_canonical_hash(self):
        spec = make_spec()
        assert len(spec.spec_key) == 64
        assert spec.spec_key == make_spec().spec_key
        # canonical JSON is key-sorted and whitespace-free
        rendered = canonical_json(spec.to_dict())
        assert ": " not in rendered and ", " not in rendered

    @pytest.mark.parametrize(
        "change",
        [
            {"code_version": "dummy/2"},
            {"runner": "tests.test_jobs:failing_runner"},
            {"protocol": "dijkstra"},
            {"graph": {"topology": "ring", "size": 7}},
            {"daemon": "cd-adv"},
            {"seeds": (11, 23)},
            {"horizon": 101},
            {"metrics": ("steps", "rounds")},
            {"params": {"engine": "auto", "flag": False}},
        ],
    )
    def test_every_field_feeds_the_key(self, change):
        assert make_spec(**change).spec_key != make_spec().spec_key

    def test_key_insensitive_to_mapping_order(self):
        a = make_spec(params={"x": 1, "y": 2})
        b = make_spec(params={"y": 2, "x": 1})
        assert a.spec_key == b.spec_key

    def test_malformed_runner_rejected(self):
        with pytest.raises(JobError):
            make_spec(runner="no-colon-here")

    def test_missing_field_rejected(self):
        with pytest.raises(JobError):
            JobSpec.from_dict({"runner": "m:f"})

    def test_accessors(self):
        spec = make_spec()
        assert spec.graph_item("topology") == "ring"
        assert spec.graph_item("absent", 42) == 42
        assert spec.param("engine") == "auto"
        assert spec.param("absent") is None
        assert spec.spec_key[:12] in spec.describe()


class TestWorkerPool:
    def test_sequential_matches_map(self):
        with WorkerPool() as pool:
            assert pool.run(abs, [-1, 2, -3]) == [1, 2, 3]
            assert not pool.parallel

    def test_parallel_preserves_order(self):
        with WorkerPool(2) as pool:
            assert pool.parallel
            assert pool.run(abs, list(range(-20, 0))) == list(range(20, 0, -1))

    def test_pool_persists_across_runs(self):
        with WorkerPool(2) as pool:
            assert pool.run(abs, [-1, -2]) == [1, 2]
            executor = pool._executor
            assert pool.run(abs, [-3, -4]) == [3, 4]
            assert pool._executor is executor

    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError):
            WorkerPool(-1)

    def test_on_result_called_per_task(self):
        seen = []
        with WorkerPool() as pool:
            pool.run(abs, [-1, -2], on_result=lambda i, r: seen.append((i, r)))
        assert seen == [(0, 1), (1, 2)]

    def test_sequential_failure_carries_index_and_repr(self):
        def worker(task):
            if task == "bad-task":
                raise RuntimeError("boom")
            return task

        with WorkerPool() as pool:
            with pytest.raises(JobError) as info:
                pool.run(worker, ["fine", "bad-task"])
        message = str(info.value)
        assert "task 1" in message
        assert repr("bad-task") in message
        assert isinstance(info.value.__cause__, RuntimeError)

    def test_parallel_failure_carries_index_and_repr(self):
        payload = make_spec(runner="tests.test_jobs:failing_runner").to_dict()
        with WorkerPool(2) as pool:
            with pytest.raises(JobError) as info:
                pool.run(execute_job, [payload, payload])
        assert "RuntimeError" in str(info.value)
        assert "failing_runner" in str(info.value)


class TestResultStore:
    def test_put_get_round_trip(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = make_spec()
        store.put(spec, {"value": 7})
        assert store.get(spec.spec_key) == {"value": 7}
        assert store.contains(spec.spec_key)
        assert list(store.keys()) == [spec.spec_key]
        assert len(store) == 1

    def test_miss_returns_none(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.get("0" * 64) is None
        assert not store.contains("0" * 64)

    def test_corrupt_entry_reads_as_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = make_spec()
        path = store.put(spec, {"value": 7})
        path.write_text("{truncated", encoding="utf-8")
        assert store.get(spec.spec_key) is None
        assert list(store.keys()) == []

    def test_truncated_entry_reads_as_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = make_spec()
        path = store.put(spec, {"value": 7})
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        assert store.get(spec.spec_key) is None

    def test_schema_mismatch_reads_as_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = make_spec()
        path = store.put(spec, {"value": 7})
        entry = json.loads(path.read_text(encoding="utf-8"))
        entry["schema"] = 999
        path.write_text(json.dumps(entry), encoding="utf-8")
        assert store.get(spec.spec_key) is None

    def test_key_mismatch_reads_as_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = make_spec()
        path = store.put(spec, {"value": 7})
        moved = path.with_name("f" * 64 + ".json")
        os.rename(path, moved)
        assert store.get("f" * 64) is None

    def test_no_temp_files_left_behind(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(make_spec(), {"value": 7})
        leftovers = [p for p in tmp_path.rglob("*.tmp")]
        assert leftovers == []

    def test_discard_and_clear(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = make_spec()
        store.put(spec, 1)
        assert store.discard(spec.spec_key)
        assert not store.discard(spec.spec_key)
        store.put(spec, 1)
        assert store.clear() == 1
        assert len(store) == 0


class TestJournal:
    def test_sweep_key_depends_on_order(self):
        a, b = make_spec(), make_spec(seeds=(1,))
        assert Journal.sweep_key([a, b]) != Journal.sweep_key([b, a])

    def test_begin_and_done_round_trip(self, tmp_path):
        journal = Journal(tmp_path)
        specs = [make_spec(), make_spec(seeds=(1,))]
        key = Journal.sweep_key(specs)
        journal.begin(key, specs, label="demo")
        journal.record_done(key, specs[0].spec_key, cached=False)
        assert journal.completed(key) == {specs[0].spec_key}
        (status,) = journal.status()
        assert status["label"] == "demo"
        assert status["total"] == 2 and status["done"] == 1
        assert not status["complete"]

    def test_malformed_trailing_line_skipped(self, tmp_path):
        journal = Journal(tmp_path)
        specs = [make_spec()]
        key = Journal.sweep_key(specs)
        journal.begin(key, specs)
        journal.record_done(key, specs[0].spec_key, cached=False)
        with open(journal.path_for(key), "a", encoding="utf-8") as handle:
            handle.write('{"event": "done", "spec_')  # kill mid-append
        assert journal.completed(key) == {specs[0].spec_key}


class TestDispatcher:
    def test_uncached_dispatch_executes_everything(self):
        specs = [make_spec(seeds=(i,)) for i in range(3)]
        with Dispatcher() as dispatcher:
            results = dispatcher.run(specs)
        assert results == [{"echo": "ssme", "seeds": [i]} for i in range(3)]
        assert dispatcher.last_stats.executed == 3
        assert dispatcher.last_stats.hits == 0

    def test_warm_cache_executes_nothing(self, tmp_path):
        specs = [make_spec(seeds=(i,)) for i in range(3)]
        with Dispatcher(store=tmp_path) as dispatcher:
            cold = dispatcher.run(specs)
            assert dispatcher.last_stats.executed == 3
            warm = dispatcher.run(specs)
            assert dispatcher.last_stats.all_hits
            assert dispatcher.last_stats.executed == 0
        assert warm == cold
        assert dispatcher.stats.total == 6 and dispatcher.stats.hits == 3

    def test_results_are_json_normalized(self, tmp_path):
        spec = make_spec(seeds=(5,))
        with Dispatcher(store=tmp_path) as dispatcher:
            (fresh,) = dispatcher.run([spec])
            (cached,) = dispatcher.run([spec])
        # both runs hand back plain JSON types (tuples already lists)
        assert fresh == cached
        assert type(fresh["seeds"]) is list

    def test_refresh_ignores_cache(self, tmp_path):
        spec = make_spec()
        with Dispatcher(store=tmp_path) as dispatcher:
            dispatcher.run([spec])
        with Dispatcher(store=tmp_path, refresh=True) as dispatcher:
            dispatcher.run([spec])
            assert dispatcher.last_stats.executed == 1
            assert dispatcher.last_stats.hits == 0

    def test_resume_from_partial_store(self, tmp_path):
        specs = [make_spec(seeds=(i,)) for i in range(4)]
        store = ResultStore(tmp_path)
        for spec in specs[:2]:
            store.put(spec, execute_job(spec.to_dict()))
        with Dispatcher(store=store) as dispatcher:
            results = dispatcher.run(specs)
            assert dispatcher.last_stats.hits == 2
            assert dispatcher.last_stats.executed == 2
        assert results == [{"echo": "ssme", "seeds": [i]} for i in range(4)]

    def test_corrupted_entry_recomputed_not_crash(self, tmp_path):
        spec = make_spec()
        store = ResultStore(tmp_path)
        with Dispatcher(store=store) as dispatcher:
            dispatcher.run([spec])
        store.path_for(spec.spec_key).write_text("garbage", encoding="utf-8")
        with Dispatcher(store=store) as dispatcher:
            (result,) = dispatcher.run([spec])
            assert dispatcher.last_stats.executed == 1
        assert result == {"echo": "ssme", "seeds": [11, 22]}
        # and the entry was rewritten
        assert store.get(spec.spec_key) == result

    def test_progress_events_stream(self, tmp_path):
        events = []
        specs = [make_spec(seeds=(i,)) for i in range(2)]
        with Dispatcher(store=tmp_path, progress=events.append) as dispatcher:
            dispatcher.run(specs)
            dispatcher.run(specs)
        kinds = [event.kind for event in events]
        assert kinds == ["begin", "done", "done", "end", "begin", "hit", "hit", "end"]
        assert all(isinstance(event, ProgressEvent) for event in events)
        assert events[-2].cached

    def test_journal_written_per_sweep(self, tmp_path):
        specs = [make_spec(seeds=(i,)) for i in range(2)]
        with Dispatcher(store=tmp_path) as dispatcher:
            dispatcher.run(specs, label="sweep-A")
        (status,) = Journal(tmp_path).status()
        assert status["complete"]
        assert status["label"] == "sweep-A"

    def test_parallel_dispatch_matches_sequential(self, tmp_path):
        specs = [make_spec(seeds=(i,)) for i in range(6)]
        with Dispatcher() as sequential:
            expected = sequential.run(specs)
        with Dispatcher(workers=3) as parallel:
            assert parallel.run(specs) == expected

    def test_stats_arithmetic(self):
        stats = DispatchStats(total=4, hits=1, executed=3, sweeps=1)
        assert stats.misses == 3
        assert not stats.all_hits
        stats.add(DispatchStats(total=2, hits=2, executed=0, sweeps=1))
        assert stats.total == 6 and stats.hits == 3 and stats.sweeps == 2
        assert DispatchStats().all_hits is False
