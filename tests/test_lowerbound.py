"""Unit tests for the Theorem 4 lower-bound machinery."""

from __future__ import annotations

import math
import random

import pytest

from repro.core import synchronous_execution
from repro.exceptions import ConstructionError
from repro.graphs import Graph, diameter, grid_graph, path_graph, ring_graph
from repro.lowerbound import (
    adversarial_mutex_configurations,
    check_local_indistinguishability,
    construct_double_privilege_witness,
    find_privileged_step,
    immediate_double_privilege_configuration,
    latest_violation_configuration,
    local_state,
    local_states_equal,
    lower_bound_profile,
    splice_configurations,
)
from repro.mutex import SSME, DijkstraTokenRing, MutualExclusionSpec
from repro.unison import AsynchronousUnison


class TestLocalStates:
    def test_local_state_is_the_ball_restriction(self):
        protocol = SSME(ring_graph(8))
        gamma = protocol.default_configuration()
        ls = local_state(gamma, protocol.graph, 0, 2)
        assert set(ls) == {0, 1, 2, 6, 7}

    def test_local_states_equal(self):
        protocol = SSME(ring_graph(8))
        gamma = protocol.default_configuration()
        gamma2 = gamma.updated({4: 5})
        assert local_states_equal(gamma, gamma2, protocol.graph, 0, 2)
        assert not local_states_equal(gamma, gamma2, protocol.graph, 0, 4)

    def test_lemma5_indistinguishability(self, rng):
        """Executable Lemma 5: equal k-local states give equal restrictions
        of the k-step synchronous prefixes."""
        protocol = SSME(path_graph(9))
        for k in (1, 2, 3):
            gamma = protocol.random_configuration(rng)
            # Change only states far from vertex 0 (distance > k).
            far = [v for v in protocol.graph.vertices if protocol.graph.distance(0, v) > k]
            changes = {v: protocol.random_state(v, rng) for v in far}
            gamma_prime = gamma.updated(changes)
            assert check_local_indistinguishability(protocol, gamma, gamma_prime, 0, k)

    def test_lemma5_requires_equal_local_states(self, rng):
        protocol = SSME(path_graph(5))
        gamma = protocol.random_configuration(rng)
        gamma_prime = gamma.updated({1: protocol.clock.phi(gamma[1])})
        with pytest.raises(ConstructionError):
            check_local_indistinguishability(protocol, gamma, gamma_prime, 0, 2)


class TestSplicing:
    def test_splice_disjoint_balls(self):
        protocol = SSME(path_graph(9))
        a = protocol.legitimate_configuration(3)
        b = protocol.legitimate_configuration(7)
        filler = protocol.legitimate_configuration(0)
        spliced = splice_configurations(
            protocol.graph, [(0, 2, a), (8, 2, b)], filler
        )
        assert spliced[0] == 3 and spliced[2] == 3
        assert spliced[8] == 7 and spliced[6] == 7
        assert spliced[4] == 0

    def test_splice_rejects_overlapping_balls(self):
        protocol = SSME(path_graph(5))
        gamma = protocol.legitimate_configuration(0)
        with pytest.raises(ConstructionError):
            splice_configurations(protocol.graph, [(0, 2, gamma), (4, 2, gamma)], gamma)


class TestFindPrivilegedStep:
    def test_finds_the_expected_step(self):
        protocol = SSME(ring_graph(6))
        execution = synchronous_execution(
            protocol, protocol.default_configuration(), protocol.K + 4
        )
        step = find_privileged_step(protocol, execution, 2, after=0)
        # From the all-zero configuration every clock advances together, so
        # vertex 2 is privileged exactly when the common value reaches its
        # privileged value.
        assert step == protocol.privileged_value(2)

    def test_returns_none_when_never_privileged(self):
        protocol = SSME(ring_graph(6))
        execution = synchronous_execution(protocol, protocol.default_configuration(), 3)
        assert find_privileged_step(protocol, execution, 2, after=0) is None

    def test_requires_privilege_aware_protocol(self):
        unison = AsynchronousUnison(ring_graph(4))
        execution = synchronous_execution(unison, unison.legitimate_configuration(0), 3)
        with pytest.raises(ConstructionError):
            find_privileged_step(unison, execution, 0, after=0)


class TestWitnessConstruction:
    @pytest.mark.parametrize(
        "graph",
        [ring_graph(10), path_graph(9), grid_graph(4, 4)],
        ids=["ring10", "path9", "grid4x4"],
    )
    def test_every_admissible_delay_has_a_witness(self, graph):
        protocol = SSME(graph)
        bound = math.ceil(protocol.diam / 2)
        witnesses = lower_bound_profile(protocol)
        assert len(witnesses) == bound
        assert all(w.success for w in witnesses)
        for t, witness in enumerate(witnesses):
            assert witness.t == t
            assert len(witness.privileged_at_t) == 2

    def test_witness_violates_safety_at_exactly_t(self):
        protocol = SSME(path_graph(9))
        spec = MutualExclusionSpec(protocol)
        t = math.ceil(protocol.diam / 2) - 1
        witness = construct_double_privilege_witness(protocol, t)
        execution = synchronous_execution(protocol, witness.initial_configuration, t)
        assert not spec.is_safe(execution.configuration(t), protocol)

    def test_rejects_overlapping_delays(self):
        protocol = SSME(ring_graph(8))  # diam 4
        with pytest.raises(ConstructionError):
            construct_double_privilege_witness(protocol, 2)  # 2t >= diam

    def test_rejects_single_vertex_graph(self):
        protocol = SSME(Graph([0], []))
        with pytest.raises(ConstructionError):
            construct_double_privilege_witness(protocol, 0)

    def test_rejects_negative_inputs(self):
        protocol = SSME(ring_graph(8))
        with pytest.raises(ConstructionError):
            construct_double_privilege_witness(protocol, -1)
        with pytest.raises(ConstructionError):
            construct_double_privilege_witness(protocol, 0, privilege_radius=-1)

    def test_dijkstra_witness_with_privilege_radius(self):
        protocol = DijkstraTokenRing.on_ring(12)
        witness = construct_double_privilege_witness(protocol, 1, privilege_radius=1)
        assert witness.success

    def test_explicit_endpoints_too_close(self):
        protocol = SSME(path_graph(9))
        with pytest.raises(ConstructionError):
            construct_double_privilege_witness(protocol, 3, endpoints=(0, 2))


class TestAdversarialWorkloads:
    def test_immediate_double_privilege(self):
        protocol = SSME(ring_graph(8))
        spec = MutualExclusionSpec(protocol)
        gamma = immediate_double_privilege_configuration(protocol)
        assert not spec.is_safe(gamma, protocol)

    def test_immediate_double_privilege_needs_ssme_like_protocol(self):
        protocol = DijkstraTokenRing.on_ring(6)
        with pytest.raises(ConstructionError):
            immediate_double_privilege_configuration(protocol)

    def test_latest_violation_configuration_realizes_the_bound(self):
        protocol = SSME(path_graph(9))
        spec = MutualExclusionSpec(protocol)
        gamma = latest_violation_configuration(protocol)
        bound = protocol.synchronous_stabilization_bound()
        execution = synchronous_execution(protocol, gamma, bound)
        assert not spec.is_safe(execution.configuration(bound - 1), protocol)
        assert spec.is_safe(execution.configuration(bound), protocol)

    def test_adversarial_workload_composition(self, rng):
        protocol = SSME(ring_graph(8))
        workload = adversarial_mutex_configurations(protocol, rng, random_count=3)
        assert len(workload) == 5  # 3 random + immediate + spliced

    def test_adversarial_workload_without_spliced(self, rng):
        protocol = SSME(ring_graph(8))
        workload = adversarial_mutex_configurations(
            protocol, rng, random_count=2, include_spliced=False
        )
        assert len(workload) == 3
