"""Unit tests for the Manne et al. maximal matching baseline."""

from __future__ import annotations

import random

import pytest

from repro.core import (
    CentralDaemon,
    DistributedDaemon,
    LocallyCentralDaemon,
    Simulator,
    SynchronousDaemon,
)
from repro.exceptions import ProtocolError, SpecificationError
from repro.graphs import complete_graph, grid_graph, path_graph, random_connected_graph, ring_graph, star_graph
from repro.baselines import MatchingState, MaximalMatching, MaximalMatchingSpec
from repro.mutex import DijkstraTokenRing


class TestMatchingState:
    def test_equality_and_hash(self):
        a = MatchingState(pointer=1, married=False)
        b = MatchingState(pointer=1, married=False)
        c = MatchingState(pointer=None, married=False)
        assert a == b
        assert hash(a) == hash(b)
        assert a != c
        assert a != "not-a-state"

    def test_repr(self):
        assert "pointer=1" in repr(MatchingState(1, True))


class TestConstruction:
    def test_state_validation(self):
        protocol = MaximalMatching(path_graph(3))
        with pytest.raises(ProtocolError):
            protocol.validate_state(0, "nope")
        with pytest.raises(ProtocolError):
            protocol.validate_state(0, MatchingState(pointer=2, married=False))  # 2 not a neighbour of 0

    def test_default_state(self):
        protocol = MaximalMatching(path_graph(3))
        state = protocol.default_state(0)
        assert state.pointer is None and not state.married

    def test_spec_requires_matching_protocol(self):
        with pytest.raises(SpecificationError):
            MaximalMatchingSpec(DijkstraTokenRing.on_ring(4))


class TestRules:
    def test_seduction_points_to_larger_free_neighbor(self):
        protocol = MaximalMatching(path_graph(3))
        gamma = protocol.default_configuration()
        # Vertex 0's only larger free neighbour is 1.
        rules = protocol.enabled_rules(gamma, 0)
        assert [r.name for r in rules] == ["Seduction"]
        gamma2, _ = protocol.apply(gamma, [0])
        assert gamma2[0].pointer == 1

    def test_marriage_points_back(self):
        protocol = MaximalMatching(path_graph(2))
        gamma = protocol.configuration(
            {0: MatchingState(1, False), 1: MatchingState(None, False)}
        )
        rules = protocol.enabled_rules(gamma, 1)
        assert [r.name for r in rules] == ["Marriage"]
        gamma2, _ = protocol.apply(gamma, [1])
        assert gamma2[1].pointer == 0

    def test_update_fixes_cache_bit(self):
        protocol = MaximalMatching(path_graph(2))
        gamma = protocol.configuration(
            {0: MatchingState(1, False), 1: MatchingState(0, False)}
        )
        for vertex in (0, 1):
            rules = protocol.enabled_rules(gamma, vertex)
            assert [r.name for r in rules] == ["Update"]
        gamma2, _ = protocol.apply(gamma, [0, 1])
        assert gamma2[0].married and gamma2[1].married

    def test_abandonment_of_married_target(self):
        protocol = MaximalMatching(path_graph(3))
        # Vertex 0 points at 1, but 1 is married to 2.
        gamma = protocol.configuration(
            {
                0: MatchingState(1, False),
                1: MatchingState(2, True),
                2: MatchingState(1, True),
            }
        )
        rules = protocol.enabled_rules(gamma, 0)
        assert [r.name for r in rules] == ["Abandonment"]
        gamma2, _ = protocol.apply(gamma, [0])
        assert gamma2[0].pointer is None

    def test_matched_edges_extraction(self):
        protocol = MaximalMatching(path_graph(4))
        gamma = protocol.configuration(
            {
                0: MatchingState(1, True),
                1: MatchingState(0, True),
                2: MatchingState(1, False),
                3: MatchingState(None, False),
            }
        )
        assert protocol.matched_edges(gamma) == frozenset({(0, 1)})
        assert not protocol.is_maximal_matching(gamma)  # edge (2, 3) uncovered


class TestLegitimacy:
    def test_legitimate_configuration(self):
        protocol = MaximalMatching(path_graph(4))
        spec = MaximalMatchingSpec(protocol)
        gamma = protocol.configuration(
            {
                0: MatchingState(1, True),
                1: MatchingState(0, True),
                2: MatchingState(3, True),
                3: MatchingState(2, True),
            }
        )
        assert spec.is_safe(gamma, protocol)
        assert protocol.is_terminal(gamma)

    def test_dangling_pointer_is_not_legitimate(self):
        protocol = MaximalMatching(path_graph(4))
        spec = MaximalMatchingSpec(protocol)
        gamma = protocol.configuration(
            {
                0: MatchingState(1, True),
                1: MatchingState(0, True),
                2: MatchingState(1, False),
                3: MatchingState(None, False),
            }
        )
        assert not spec.is_safe(gamma, protocol)


class TestConvergence:
    GRAPHS = {
        "path6": path_graph(6),
        "ring7": ring_graph(7),
        "star6": star_graph(6),
        "grid3x3": grid_graph(3, 3),
        "complete5": complete_graph(5),
        "random12": random_connected_graph(12, 0.25, random.Random(5)),
    }

    @pytest.mark.parametrize("graph_name", sorted(GRAPHS))
    @pytest.mark.parametrize(
        "daemon_factory",
        [SynchronousDaemon, CentralDaemon, lambda: DistributedDaemon(0.5), LocallyCentralDaemon],
        ids=["sd", "cd", "dd", "lcd"],
    )
    def test_terminal_configurations_are_maximal_matchings(self, graph_name, daemon_factory, rng):
        graph = self.GRAPHS[graph_name]
        protocol = MaximalMatching(graph)
        spec = MaximalMatchingSpec(protocol)
        for _ in range(3):
            gamma = protocol.random_configuration(rng)
            simulator = Simulator(protocol, daemon_factory(), rng=random.Random(rng.randrange(2**32)))
            execution = simulator.run_until_terminal(
                gamma, max_steps=30 * (graph.n + graph.m) + 200
            )
            final = execution.final
            assert protocol.is_maximal_matching(final)
            assert spec.is_safe(final, protocol)

    def test_step_counts_have_the_papers_shape(self, rng):
        """Section 3: about 4n+2m steps sequentially vs 2n+1 synchronously."""
        graph = random_connected_graph(14, 0.2, random.Random(2))
        protocol = MaximalMatching(graph)
        budget_sequential = 4 * graph.n + 2 * graph.m
        budget_synchronous = 2 * graph.n + 1
        for _ in range(3):
            gamma = protocol.random_configuration(rng)
            sync_exec = Simulator(protocol, SynchronousDaemon()).run_until_terminal(
                gamma, max_steps=10 * budget_synchronous
            )
            assert sync_exec.steps <= 2 * budget_synchronous
            seq_exec = Simulator(
                protocol, CentralDaemon(), rng=random.Random(9)
            ).run_until_terminal(gamma, max_steps=10 * budget_sequential)
            assert seq_exec.steps <= 2 * budget_sequential
