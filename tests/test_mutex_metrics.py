"""Unit tests for the mutual-exclusion service metrics."""

from __future__ import annotations

import pytest

from repro.core import synchronous_execution
from repro.exceptions import SpecificationError
from repro.graphs import ring_graph
from repro.mutex import SSME, DijkstraTokenRing, service_metrics
from repro.unison import AsynchronousUnison


class TestServiceMetrics:
    def test_requires_privilege_aware_protocol(self):
        unison = AsynchronousUnison(ring_graph(4))
        execution = synchronous_execution(unison, unison.legitimate_configuration(0), 3)
        with pytest.raises(SpecificationError):
            service_metrics(execution, unison)

    def test_start_bounds(self):
        protocol = SSME(ring_graph(4))
        execution = synchronous_execution(protocol, protocol.legitimate_configuration(0), 5)
        with pytest.raises(SpecificationError):
            service_metrics(execution, protocol, start=99)

    def test_stabilized_ssme_serves_everybody_fairly(self):
        protocol = SSME(ring_graph(5))
        horizon = 2 * protocol.K + 10
        execution = synchronous_execution(protocol, protocol.legitimate_configuration(0), horizon)
        metrics = service_metrics(execution, protocol)
        assert metrics.starved_vertices == []
        assert metrics.total_entries >= protocol.graph.n
        # Every process is served once per clock period, so the gap between
        # two consecutive services of the same process is about K.
        assert metrics.max_gap is not None
        assert metrics.max_gap <= protocol.K + protocol.diam + 1
        assert metrics.jains_fairness > 0.9
        assert "fairness" in repr(metrics)

    def test_empty_window(self):
        protocol = SSME(ring_graph(4))
        execution = synchronous_execution(protocol, protocol.default_configuration(), 2)
        metrics = service_metrics(execution, protocol)
        assert metrics.total_entries == 0
        assert metrics.max_gap is None
        assert metrics.mean_gap is None
        assert metrics.jains_fairness == 1.0
        assert set(metrics.starved_vertices) == set(protocol.graph.vertices)

    def test_dijkstra_round_robin_service(self):
        protocol = DijkstraTokenRing.on_ring(6)
        execution = synchronous_execution(
            protocol, protocol.legitimate_configuration(0), 4 * protocol.graph.n
        )
        metrics = service_metrics(execution, protocol)
        assert metrics.starved_vertices == []
        assert metrics.jains_fairness > 0.9
        assert metrics.max_gap <= protocol.graph.n + 1
