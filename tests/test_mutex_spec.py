"""Unit tests for spec_ME and critical-section accounting."""

from __future__ import annotations

import random

import pytest

from repro.core import SynchronousDaemon, Simulator, synchronous_execution
from repro.exceptions import SpecificationError
from repro.graphs import ring_graph
from repro.mutex import (
    SSME,
    DijkstraTokenRing,
    MutualExclusionSpec,
    critical_section_counts,
    critical_section_events,
)
from repro.unison import AsynchronousUnison


class TestConstruction:
    def test_requires_privilege_aware_protocol(self):
        unison = AsynchronousUnison(ring_graph(4))
        with pytest.raises(SpecificationError):
            MutualExclusionSpec(unison)

    def test_accepts_ssme_and_dijkstra(self):
        MutualExclusionSpec(SSME(ring_graph(4)))
        MutualExclusionSpec(DijkstraTokenRing.on_ring(4))


class TestSafety:
    def test_safe_with_zero_or_one_privileged(self):
        protocol = SSME(ring_graph(5))
        spec = MutualExclusionSpec(protocol)
        assert spec.is_safe(protocol.default_configuration(), protocol)
        one = protocol.legitimate_configuration(protocol.privileged_value(1))
        assert spec.is_safe(one, protocol)
        assert spec.privileged_count(one) == 1

    def test_unsafe_with_two_privileged(self):
        protocol = SSME(ring_graph(6))
        spec = MutualExclusionSpec(protocol)
        assignment = {v: 1 for v in protocol.graph.vertices}
        assignment[0] = protocol.privileged_value(0)
        assignment[3] = protocol.privileged_value(3)
        gamma = protocol.configuration(assignment)
        assert not spec.is_safe(gamma, protocol)
        assert spec.privileged_count(gamma) == 2


class TestCriticalSections:
    def test_events_require_privilege_aware_protocol(self):
        unison = AsynchronousUnison(ring_graph(4))
        execution = synchronous_execution(unison, unison.legitimate_configuration(0), 3)
        with pytest.raises(SpecificationError):
            critical_section_events(execution, unison)

    def test_events_on_legitimate_ssme_execution(self):
        protocol = SSME(ring_graph(4))
        execution = synchronous_execution(
            protocol, protocol.legitimate_configuration(0), protocol.K + protocol.diam + 2
        )
        events = critical_section_events(execution, protocol)
        # Every vertex executes its critical section at least once per clock
        # period, and never simultaneously with another vertex.
        vertices_seen = {vertex for _, vertex in events}
        assert vertices_seen == set(protocol.graph.vertices)
        by_step = {}
        for step, vertex in events:
            by_step.setdefault(step, []).append(vertex)
        assert all(len(vs) == 1 for vs in by_step.values())

    def test_counts(self):
        protocol = SSME(ring_graph(4))
        horizon = 2 * protocol.K + 10
        execution = synchronous_execution(protocol, protocol.legitimate_configuration(0), horizon)
        counts = critical_section_counts(execution, protocol)
        assert set(counts) == set(protocol.graph.vertices)
        assert all(count >= 1 for count in counts.values())
        # Restricting to a late start reduces the counts.
        late = critical_section_counts(execution, protocol, start=horizon - 1)
        assert sum(late.values()) <= sum(counts.values())

    def test_dijkstra_critical_sections_rotate(self):
        protocol = DijkstraTokenRing.on_ring(5)
        execution = synchronous_execution(
            protocol, protocol.legitimate_configuration(0), 6 * protocol.graph.n
        )
        counts = critical_section_counts(execution, protocol)
        assert all(count >= 1 for count in counts.values())


class TestLiveness:
    def test_liveness_fails_on_short_window(self):
        protocol = SSME(ring_graph(5))
        spec = MutualExclusionSpec(protocol)
        execution = synchronous_execution(protocol, protocol.legitimate_configuration(0), 3)
        assert not spec.check_liveness(execution, protocol, 0)

    def test_liveness_holds_on_full_period(self):
        protocol = SSME(ring_graph(5))
        spec = MutualExclusionSpec(protocol)
        execution = synchronous_execution(
            protocol, protocol.legitimate_configuration(0), protocol.K + protocol.diam + 2
        )
        assert spec.check_liveness(execution, protocol, 0)
