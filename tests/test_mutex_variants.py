"""Unit tests for the parametric SSME variants (ablation support)."""

from __future__ import annotations

import pytest

from repro.core import SynchronousDaemon, Simulator
from repro.exceptions import ProtocolError
from repro.experiments.ablation_privilege_spacing import adversarial_identity_assignment
from repro.graphs import diameter, path_graph, ring_graph, star_graph
from repro.mutex import (
    SSME,
    MutualExclusionSpec,
    ParametricClockMutex,
    minimal_safe_clock_size,
    minimal_safe_spacing,
)


class TestHelpers:
    def test_minimal_safe_spacing(self):
        assert minimal_safe_spacing(0) == 1
        assert minimal_safe_spacing(5) == 6

    def test_minimal_safe_clock_size(self):
        # first = 2n, last = 2n + spacing(n-1); K = last + diam + 1.
        assert minimal_safe_clock_size(4, 3, 6) == 8 + 18 + 4


class TestConstruction:
    def test_defaults_match_ssme_spacing(self):
        graph = ring_graph(8)
        protocol = ParametricClockMutex(graph)
        ssme = SSME(graph)
        assert protocol.spacing == 2 * ssme.diam
        for vertex in graph.vertices:
            assert protocol.privileged_value(vertex) == ssme.privileged_value(vertex)

    def test_invalid_parameters(self):
        graph = path_graph(5)
        with pytest.raises(ProtocolError):
            ParametricClockMutex(graph, spacing=0)
        with pytest.raises(ProtocolError):
            ParametricClockMutex(graph, first_value=0)
        with pytest.raises(ProtocolError):
            ParametricClockMutex(graph, spacing=4, K=12)  # cannot fit the values

    def test_identity_validation(self):
        graph = path_graph(4)
        with pytest.raises(ProtocolError):
            ParametricClockMutex(graph, identities={0: 0, 1: 1, 2: 2})  # missing vertex
        with pytest.raises(ProtocolError):
            ParametricClockMutex(graph, identities={0: 0, 1: 1, 2: 2, 3: 5})  # not 0..n-1

    def test_explicit_identities(self):
        graph = path_graph(4)
        protocol = ParametricClockMutex(graph, identities={0: 3, 1: 2, 2: 1, 3: 0})
        assert protocol.privileged_value(3) < protocol.privileged_value(0)

    def test_unknown_vertex(self):
        protocol = ParametricClockMutex(path_graph(4))
        with pytest.raises(ProtocolError):
            protocol.privileged_value(9)


class TestSafetyAnalysis:
    def test_paper_parameters_are_safe_on_every_topology(self):
        for graph in (ring_graph(8), path_graph(9), star_graph(7)):
            protocol = ParametricClockMutex(graph)
            assert protocol.guarantees_safety_in_gamma1()
            assert protocol.conflicting_pair() is None
            with pytest.raises(ProtocolError):
                protocol.unsafe_legitimate_configuration()

    def test_small_spacing_with_adversarial_identities_is_unsafe(self):
        graph = path_graph(9)
        diam = diameter(graph)
        identities = adversarial_identity_assignment(graph)
        protocol = ParametricClockMutex(graph, spacing=diam, identities=identities)
        assert not protocol.guarantees_safety_in_gamma1()
        pair = protocol.conflicting_pair()
        assert pair is not None

    def test_unsafe_legitimate_configuration_is_legitimate_and_unsafe(self):
        graph = path_graph(9)
        diam = diameter(graph)
        identities = adversarial_identity_assignment(graph)
        protocol = ParametricClockMutex(graph, spacing=diam, identities=identities)
        spec = MutualExclusionSpec(protocol)
        gamma = protocol.unsafe_legitimate_configuration()
        assert protocol.is_legitimate(gamma)
        assert not spec.is_safe(gamma, protocol)

    def test_violation_happens_after_full_unison_stabilization(self):
        """With a too-small spacing the safety failure is not a transient:
        it occurs in a configuration the unison substrate considers fully
        stabilized (member of Γ₁), so closure of spec_ME fails."""
        graph = path_graph(7)
        diam = diameter(graph)
        identities = adversarial_identity_assignment(graph)
        protocol = ParametricClockMutex(graph, spacing=diam, identities=identities)
        spec = MutualExclusionSpec(protocol)
        gamma = protocol.unsafe_legitimate_configuration()
        execution = Simulator(protocol, SynchronousDaemon()).run(gamma, max_steps=protocol.K)
        assert protocol.is_legitimate(execution.initial)
        assert not spec.is_safe(execution.initial, protocol)
        # Every configuration of the run stays in Γ₁ (unison closure), yet the
        # run starts with a mutual-exclusion violation.
        for index in range(execution.steps + 1):
            assert protocol.is_legitimate(execution.configuration(index))

    def test_safe_spacing_boundary(self):
        graph = path_graph(9)
        diam = diameter(graph)
        identities = adversarial_identity_assignment(graph)
        unsafe = ParametricClockMutex(graph, spacing=diam, identities=identities)
        safe = ParametricClockMutex(graph, spacing=diam + 1, identities=identities)
        assert not unsafe.guarantees_safety_in_gamma1()
        assert safe.guarantees_safety_in_gamma1()


class TestAdversarialIdentityAssignment:
    def test_is_a_bijection(self):
        graph = ring_graph(9)
        identities = adversarial_identity_assignment(graph)
        assert sorted(identities.values()) == list(range(graph.n))
        assert set(identities.keys()) == set(graph.vertices)

    def test_consecutive_identities_are_far_apart_on_paths(self):
        graph = path_graph(11)
        identities = adversarial_identity_assignment(graph)
        by_identity = {identity: vertex for vertex, identity in identities.items()}
        assert graph.distance(by_identity[0], by_identity[1]) == diameter(graph)
