"""Tests for the opt-in process-parallel sweep helper.

The contract under test: ``workers=`` must never change any reported
number — the task lists carry pre-drawn seeds, so sequential and parallel
execution aggregate identical results — and the helper itself must be an
order-preserving map with a zero-overhead sequential default.
"""

from __future__ import annotations

import pytest

from repro.experiments import theorem2_sync_upper, theorem3_async_upper
from repro.experiments.parallel import parallel_map


def _square(x):
    return x * x


def _reciprocal(x):
    return 1 / x


class TestParallelMap:
    def test_sequential_default_preserves_order(self):
        assert parallel_map(_square, [3, 1, 2]) == [9, 1, 4]
        assert parallel_map(_square, [], workers=4) == []
        assert parallel_map(_square, [5], workers=4) == [25]

    def test_parallel_preserves_order(self):
        assert parallel_map(_square, list(range(7)), workers=3) == [
            x * x for x in range(7)
        ]

    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError):
            parallel_map(_square, [1], workers=-1)

    def test_worker_failure_names_the_task(self):
        from repro.exceptions import JobError

        with pytest.raises(JobError) as info:
            parallel_map(_reciprocal, [2, 1, 0, 5])
        message = str(info.value)
        assert "task 2" in message
        assert "0" in message
        assert isinstance(info.value.__cause__, ZeroDivisionError)

    def test_worker_failure_in_subprocess_names_the_task(self):
        from repro.exceptions import JobError

        with pytest.raises(JobError) as info:
            parallel_map(_reciprocal, [2, 1, 0, 5], workers=2)
        assert "ZeroDivisionError" in str(info.value)


class TestTheoremDriversParallel:
    """workers= is observationally inert for the experiment drivers."""

    SWEEP2 = (("ring", 6), ("star", 5))
    SWEEP3 = (("ring", 5),)

    def test_theorem2_workers_do_not_change_results(self):
        sequential = theorem2_sync_upper.run_experiment(
            sweep=self.SWEEP2, random_configurations_per_graph=3, seed=17
        )
        parallel = theorem2_sync_upper.run_experiment(
            sweep=self.SWEEP2, random_configurations_per_graph=3, seed=17, workers=3
        )
        assert parallel.rows == sequential.rows
        assert parallel.summary == sequential.summary
        assert parallel.passed == sequential.passed

    def test_theorem3_workers_do_not_change_results(self):
        sequential = theorem3_async_upper.run_experiment(
            sweep=self.SWEEP3, random_configurations_per_graph=2, seed=17
        )
        parallel = theorem3_async_upper.run_experiment(
            sweep=self.SWEEP3, random_configurations_per_graph=2, seed=17, workers=2
        )
        assert parallel.rows == sequential.rows
        assert parallel.summary == sequential.summary
        assert parallel.passed == sequential.passed

    def test_theorem3_custom_daemon_factories_run_sequentially(self):
        """Custom factories hold closures; workers= must degrade, not crash."""
        from repro.core import CentralDaemon

        factories = (("cd", CentralDaemon), ("cd-again", lambda: CentralDaemon("first")))
        report = theorem3_async_upper.run_experiment(
            sweep=self.SWEEP3,
            daemon_factories=factories,
            random_configurations_per_graph=1,
            seed=3,
            workers=4,
        )
        row = report.rows[0]
        assert "unison_steps[cd-again]" in row
