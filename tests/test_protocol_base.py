"""Unit tests for the Protocol base class, exercised through a toy protocol."""

from __future__ import annotations

import random
from typing import Sequence

import pytest

from repro.core import Configuration, LocalView, Protocol, Rule
from repro.exceptions import ProtocolError
from repro.graphs import Graph, path_graph, ring_graph


class CountdownProtocol(Protocol):
    """A toy silent protocol: every vertex decrements its counter to 0."""

    name = "countdown"

    def __init__(self, graph: Graph, ceiling: int = 5) -> None:
        super().__init__(graph)
        self.ceiling = ceiling
        self._rules = [
            Rule("dec", lambda view: view.state > 0, lambda view: view.state - 1)
        ]

    def rules(self) -> Sequence[Rule]:
        return self._rules

    def random_state(self, vertex, rng: random.Random) -> int:
        return rng.randrange(self.ceiling + 1)

    def validate_state(self, vertex, state) -> None:
        if not isinstance(state, int) or not 0 <= state <= self.ceiling:
            raise ProtocolError(f"bad state {state!r}")


@pytest.fixture
def protocol() -> CountdownProtocol:
    return CountdownProtocol(path_graph(3))


class TestConstruction:
    def test_requires_connected_graph(self):
        with pytest.raises(ProtocolError):
            CountdownProtocol(Graph([0, 1], []))

    def test_requires_non_empty_graph(self):
        with pytest.raises(ProtocolError):
            CountdownProtocol(Graph([], []))

    def test_graph_property(self, protocol):
        assert protocol.graph.n == 3


class TestConfigurations:
    def test_configuration_round_trip(self, protocol):
        gamma = protocol.configuration({0: 1, 1: 2, 2: 0})
        assert gamma[1] == 2

    def test_configuration_missing_vertex(self, protocol):
        with pytest.raises(ProtocolError):
            protocol.configuration({0: 1, 1: 2})

    def test_configuration_unknown_vertex(self, protocol):
        with pytest.raises(ProtocolError):
            protocol.configuration({0: 1, 1: 2, 2: 0, 7: 3})

    def test_configuration_validates_states(self, protocol):
        with pytest.raises(ProtocolError):
            protocol.configuration({0: 1, 1: 99, 2: 0})

    def test_random_configuration_is_reproducible(self, protocol):
        a = protocol.random_configuration(random.Random(3))
        b = protocol.random_configuration(random.Random(3))
        assert a == b

    def test_default_configuration(self, protocol):
        gamma = protocol.default_configuration()
        assert set(gamma) == {0, 1, 2}


class TestEnabledness:
    def test_enabled_rules_and_vertices(self, protocol):
        gamma = protocol.configuration({0: 0, 1: 2, 2: 0})
        assert protocol.is_enabled(gamma, 1)
        assert not protocol.is_enabled(gamma, 0)
        assert protocol.enabled_vertices(gamma) == frozenset({1})
        assert [r.name for r in protocol.enabled_rules(gamma, 1)] == ["dec"]

    def test_terminal_configuration(self, protocol):
        gamma = protocol.configuration({0: 0, 1: 0, 2: 0})
        assert protocol.is_terminal(gamma)

    def test_apply_single_vertex(self, protocol):
        gamma = protocol.configuration({0: 1, 1: 2, 2: 0})
        gamma2, records = protocol.apply(gamma, [1])
        assert gamma2[1] == 1
        assert gamma2[0] == 1
        assert len(records) == 1
        assert records[0].rule_name == "dec"
        assert records[0].changed

    def test_apply_simultaneous(self, protocol):
        gamma = protocol.configuration({0: 1, 1: 2, 2: 3})
        gamma2, records = protocol.apply(gamma, [0, 1, 2])
        assert dict(gamma2) == {0: 0, 1: 1, 2: 2}
        assert len(records) == 3

    def test_apply_ignores_disabled_vertices(self, protocol):
        gamma = protocol.configuration({0: 0, 1: 2, 2: 0})
        gamma2, records = protocol.apply(gamma, [0, 1])
        assert len(records) == 1
        assert gamma2[0] == 0

    def test_apply_unknown_vertex(self, protocol):
        gamma = protocol.default_configuration()
        with pytest.raises(ProtocolError):
            protocol.apply(gamma, [99])

    def test_apply_with_no_changes_returns_same_object(self, protocol):
        gamma = protocol.configuration({0: 0, 1: 0, 2: 0})
        gamma2, records = protocol.apply(gamma, [0])
        assert gamma2 is gamma
        assert records == []


class TestActivationRecord:
    def test_record_fields(self, protocol):
        gamma = protocol.configuration({0: 2, 1: 0, 2: 0})
        _, records = protocol.apply(gamma, [0])
        record = records[0]
        assert record.vertex == 0
        assert record.old_state == 2
        assert record.new_state == 1
        assert "dec" in repr(record)
