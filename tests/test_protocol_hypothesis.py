"""Property-based tests on the protocols' key invariants.

These check, over randomly drawn topologies, initial configurations and
daemon schedules, the invariants the paper's correctness arguments rely on:

* the unison/SSME registers always stay inside ``cherry(alpha, K)``;
* Γ₁ is closed under every selection (closure of spec_AU);
* inside Γ₁ at most one SSME vertex is privileged (Theorem 1's core);
* Dijkstra's legitimate configurations keep exactly one privilege;
* the matching protocol's terminal configurations are maximal matchings.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import MaximalMatching
from repro.core import DistributedDaemon, Simulator, SynchronousDaemon
from repro.graphs import random_connected_graph, ring_graph
from repro.mutex import SSME, DijkstraTokenRing
from repro.unison import AsynchronousUnison


def small_connected_graphs(min_n: int = 2, max_n: int = 9):
    return st.tuples(st.integers(min_n, max_n), st.floats(0.0, 0.5), st.integers(0, 10_000)).map(
        lambda params: random_connected_graph(params[0], params[1], random.Random(params[2]))
    )


@settings(max_examples=25, deadline=None)
@given(small_connected_graphs(), st.integers(0, 10_000), st.integers(5, 40))
def test_unison_states_stay_in_clock_domain(graph, seed, steps):
    protocol = AsynchronousUnison(graph, validate_parameters=False)
    rng = random.Random(seed)
    simulator = Simulator(protocol, DistributedDaemon(0.5), rng=random.Random(seed + 1))
    execution = simulator.run(protocol.random_configuration(rng), max_steps=steps)
    for configuration in execution.configurations:
        for vertex in graph.vertices:
            assert protocol.clock.contains(configuration[vertex])


@settings(max_examples=25, deadline=None)
@given(small_connected_graphs(), st.integers(0, 10_000), st.integers(5, 60))
def test_gamma1_is_closed_under_arbitrary_selections(graph, seed, steps):
    protocol = SSME(graph)
    rng = random.Random(seed)
    gamma = protocol.legitimate_configuration(rng.randrange(protocol.K))
    for _ in range(steps):
        assert protocol.is_legitimate(gamma)
        # At most one privileged vertex inside Γ₁ (Theorem 1).
        assert len(protocol.privileged_vertices(gamma)) <= 1
        enabled = protocol.enabled_vertices(gamma)
        assert enabled, "a legitimate SSME configuration always has enabled vertices"
        selection = [v for v in enabled if rng.random() < 0.5] or [
            sorted(enabled, key=repr)[0]
        ]
        gamma, _ = protocol.apply(gamma, selection)


@settings(max_examples=20, deadline=None)
@given(small_connected_graphs(min_n=2, max_n=8), st.integers(0, 10_000))
def test_ssme_synchronous_stabilization_respects_theorem2(graph, seed):
    protocol = SSME(graph)
    from repro.core import measure_stabilization
    from repro.mutex import MutualExclusionSpec

    spec = MutualExclusionSpec(protocol)
    gamma = protocol.random_configuration(random.Random(seed))
    measurement = measure_stabilization(
        protocol, SynchronousDaemon(), gamma, spec, horizon=protocol.K + 4 * protocol.alpha
    )
    assert measurement.stabilized
    assert measurement.stabilization_steps <= protocol.synchronous_stabilization_bound()


@settings(max_examples=20, deadline=None)
@given(st.integers(3, 10), st.integers(0, 10_000), st.integers(5, 40))
def test_dijkstra_legitimate_configurations_keep_one_privilege(n, seed, steps):
    protocol = DijkstraTokenRing.on_ring(n)
    rng = random.Random(seed)
    gamma = protocol.legitimate_configuration(rng.randrange(protocol.K))
    for _ in range(steps):
        assert len(protocol.privileged_vertices(gamma)) == 1
        enabled = protocol.enabled_vertices(gamma)
        selection = [v for v in enabled if rng.random() < 0.7] or [next(iter(enabled))]
        gamma, _ = protocol.apply(gamma, selection)


@settings(max_examples=15, deadline=None)
@given(small_connected_graphs(min_n=2, max_n=8), st.integers(0, 10_000))
def test_matching_terminal_configurations_are_maximal_matchings(graph, seed):
    protocol = MaximalMatching(graph)
    rng = random.Random(seed)
    simulator = Simulator(protocol, DistributedDaemon(0.5), rng=random.Random(seed + 1))
    execution = simulator.run_until_terminal(
        protocol.random_configuration(rng), max_steps=60 * (graph.n + graph.m) + 300
    )
    assert protocol.is_maximal_matching(execution.final)
