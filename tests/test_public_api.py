"""Tests of the top-level public API and package metadata."""

from __future__ import annotations

import importlib

import pytest

import repro


class TestTopLevelExports:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"{name} listed in __all__ but missing"

    def test_key_types_are_exported(self):
        assert repro.SSME.__name__ == "SSME"
        assert repro.DijkstraTokenRing.name == "dijkstra-token-ring"
        assert issubclass(repro.SynchronousDaemon, repro.Daemon)
        assert issubclass(repro.MutualExclusionSpec, repro.Specification)

    def test_exceptions_share_a_root(self):
        from repro.exceptions import (
            ClockError,
            ConstructionError,
            DaemonError,
            ExperimentError,
            GraphError,
            ProtocolError,
            ReproError,
            SimulationError,
            SpecificationError,
        )

        for exc in (
            ClockError,
            ConstructionError,
            DaemonError,
            ExperimentError,
            GraphError,
            ProtocolError,
            SimulationError,
            SpecificationError,
        ):
            assert issubclass(exc, ReproError)


class TestSubpackages:
    @pytest.mark.parametrize(
        "module",
        [
            "repro.graphs",
            "repro.clocks",
            "repro.core",
            "repro.unison",
            "repro.mutex",
            "repro.baselines",
            "repro.lowerbound",
            "repro.analysis",
            "repro.experiments",
        ],
    )
    def test_subpackage_all_resolves(self, module):
        mod = importlib.import_module(module)
        assert mod.__doc__, f"{module} must have a module docstring"
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{module}.{name} listed in __all__ but missing"


class TestQuickstartSnippet:
    def test_readme_quickstart_runs(self):
        """The README quickstart must keep working verbatim."""
        import random

        from repro import SSME, MutualExclusionSpec, SynchronousDaemon, Simulator
        from repro.core import observed_stabilization_index
        from repro.graphs import grid_graph

        protocol = SSME(grid_graph(4, 5))
        spec = MutualExclusionSpec(protocol)
        corrupted = protocol.random_configuration(random.Random(0))
        execution = Simulator(protocol, SynchronousDaemon()).run(
            corrupted, max_steps=protocol.K + 4 * protocol.alpha
        )
        steps = observed_stabilization_index(execution, spec, protocol)
        assert steps is not None
        assert steps <= protocol.synchronous_stabilization_bound()
