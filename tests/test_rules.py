"""Unit tests for LocalView and Rule."""

from __future__ import annotations

import pytest

from repro.core import Configuration, LocalView, Rule, make_rule
from repro.exceptions import ProtocolError
from repro.graphs import path_graph


class TestLocalView:
    def test_from_configuration(self):
        graph = path_graph(3)
        gamma = Configuration({0: 10, 1: 20, 2: 30})
        view = LocalView.from_configuration(gamma, 1, graph)
        assert view.vertex == 1
        assert view.state == 20
        assert view.neighbor_states == {0: 10, 2: 30}
        assert view.neighbors == frozenset({0, 2})

    def test_endpoint_has_single_neighbor(self):
        graph = path_graph(3)
        gamma = Configuration({0: 10, 1: 20, 2: 30})
        view = LocalView.from_configuration(gamma, 0, graph)
        assert view.neighbor_states == {1: 20}

    def test_neighbor_values_sorted(self):
        graph = path_graph(3)
        gamma = Configuration({0: 10, 1: 20, 2: 30})
        view = LocalView.from_configuration(gamma, 1, graph)
        assert view.neighbor_values() == [10, 30]

    def test_view_does_not_expose_non_neighbors(self):
        graph = path_graph(4)
        gamma = Configuration({0: 1, 1: 2, 2: 3, 3: 4})
        view = LocalView.from_configuration(gamma, 0, graph)
        assert 2 not in view.neighbor_states
        assert 3 not in view.neighbor_states


class TestRule:
    def test_guard_and_action(self):
        rule = Rule(
            "incr",
            guard=lambda view: view.state < 5,
            action=lambda view: view.state + 1,
        )
        graph = path_graph(2)
        view = LocalView.from_configuration(Configuration({0: 3, 1: 9}), 0, graph)
        assert rule.is_enabled(view)
        assert rule.apply(view) == 4

    def test_disabled_guard(self):
        rule = Rule("noop", guard=lambda view: False, action=lambda view: view.state)
        graph = path_graph(2)
        view = LocalView.from_configuration(Configuration({0: 3, 1: 9}), 0, graph)
        assert not rule.is_enabled(view)

    def test_rule_requires_name(self):
        with pytest.raises(ProtocolError):
            Rule("", guard=lambda v: True, action=lambda v: v.state)

    def test_make_rule(self):
        rule = make_rule("r", lambda v: True, lambda v: 0)
        assert rule.name == "r"
        assert repr(rule) == "Rule('r')"
