"""Tests for the fault-campaign scenario layer (events, campaign, registry)."""

from __future__ import annotations

import json
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ExperimentError
from repro.graphs import complete_graph, path_graph, ring_graph
from repro.scenarios import (
    CHURN_KINDS,
    ChurnEvent,
    CompiledChurn,
    CompiledFault,
    FaultSchedule,
    MIN_CHURN_VERTICES,
    SCENARIOS,
    SafetyTimeline,
    Scenario,
    apply_churn_to_graph,
    build_protocol,
    build_specification,
    compile_events,
    get_scenario,
    list_scenarios,
    run_campaign,
    run_campaign_from_params,
    run_scenario,
    scenario_names,
    transfer_configuration,
)


# --------------------------------------------------------------------- #
# FaultSchedule
# --------------------------------------------------------------------- #
class TestFaultSchedule:
    def test_periodic_fires_arithmetically(self, rng):
        schedule = FaultSchedule(kind="periodic", offset=5, period=15)
        assert schedule.fire_steps(60, rng) == (5, 20, 35, 50)

    def test_one_shot_outside_horizon_never_fires(self, rng):
        schedule = FaultSchedule(kind="one-shot", offset=10)
        assert schedule.fire_steps(10, rng) == ()
        assert schedule.fire_steps(11, rng) == (10,)

    def test_burst_shape(self, rng):
        schedule = FaultSchedule(
            kind="burst", offset=6, period=24, burst_size=2, burst_spacing=2
        )
        assert schedule.fire_steps(60, rng) == (6, 8, 30, 32, 54, 56)

    def test_count_caps_firings(self, rng):
        schedule = FaultSchedule(kind="periodic", offset=1, period=2, count=3)
        assert schedule.fire_steps(100, rng) == (1, 3, 5)

    def test_adversarial_uses_the_stabilization_bound(self, rng):
        schedule = FaultSchedule(kind="adversarial", offset=10)
        assert schedule.fire_steps(50, rng, stabilization_bound=12) == (10, 22, 34, 46)
        with pytest.raises(ExperimentError, match="stabilization bound"):
            schedule.fire_steps(50, rng)

    def test_validation_errors(self):
        with pytest.raises(ExperimentError, match="unknown schedule kind"):
            FaultSchedule(kind="lunar")
        with pytest.raises(ExperimentError, match="offset"):
            FaultSchedule(kind="one-shot", offset=0)
        with pytest.raises(ExperimentError, match="period"):
            FaultSchedule(kind="periodic")
        with pytest.raises(ExperimentError, match="rate"):
            FaultSchedule(kind="poisson", rate=1.5)
        with pytest.raises(ExperimentError, match="count"):
            FaultSchedule(kind="one-shot", count=0)

    def test_round_trip_through_dict(self):
        for schedule in (
            FaultSchedule(kind="one-shot", offset=3),
            FaultSchedule(kind="periodic", offset=2, period=7, count=4),
            FaultSchedule(kind="burst", offset=1, period=9, burst_size=2, burst_spacing=3),
            FaultSchedule(kind="poisson", offset=4, rate=0.25),
        ):
            assert FaultSchedule.from_dict(schedule.to_dict()) == schedule

    @settings(max_examples=40, deadline=None)
    @given(
        kind=st.sampled_from(["one-shot", "periodic", "burst", "poisson"]),
        offset=st.integers(min_value=1, max_value=20),
        period=st.integers(min_value=1, max_value=30),
        rate=st.floats(min_value=0.01, max_value=1.0),
        horizon=st.integers(min_value=1, max_value=200),
        seed=st.integers(min_value=0, max_value=2**32),
    )
    def test_fire_steps_deterministic_sorted_in_range(
        self, kind, offset, period, rate, horizon, seed
    ):
        schedule = FaultSchedule(kind=kind, offset=offset, period=period, rate=rate)
        first = schedule.fire_steps(horizon, random.Random(seed))
        second = schedule.fire_steps(horizon, random.Random(seed))
        assert first == second
        assert list(first) == sorted(set(first))
        assert all(1 <= step < horizon for step in first)


# --------------------------------------------------------------------- #
# Churn and compilation
# --------------------------------------------------------------------- #
class TestCompileEvents:
    def test_churn_validation(self):
        with pytest.raises(ExperimentError, match="unknown churn kind"):
            ChurnEvent(step=3, kind="teleport")
        with pytest.raises(ExperimentError, match="step"):
            ChurnEvent(step=0, kind="add-edge")

    def test_churn_before_fault_at_equal_step(self):
        events = compile_events(
            ring_graph(6),
            horizon=20,
            seed=3,
            schedule=FaultSchedule(kind="one-shot", offset=10),
            fault_model="global",
            churn=(ChurnEvent(step=10, kind="add-edge"),),
        )
        assert [type(e) for e in events] == [CompiledChurn, CompiledFault]
        assert events[0].step == events[1].step == 10

    def test_churn_targets_preserve_connectivity(self):
        churn = tuple(
            ChurnEvent(step=5 * (i + 1), kind=kind)
            for i, kind in enumerate(
                ["add-vertex", "add-edge", "remove-edge", "remove-vertex"] * 2
            )
        )
        events = compile_events(ring_graph(8), horizon=100, seed=11, churn=churn)
        graph = ring_graph(8)
        for event in events:
            graph = apply_churn_to_graph(graph, event.kind, event.target)
            assert graph.is_connected()
            assert graph.n >= MIN_CHURN_VERTICES

    def test_add_vertex_gets_a_fresh_integer_id(self):
        events = compile_events(
            ring_graph(5), horizon=10, seed=0, churn=(ChurnEvent(step=2, kind="add-vertex"),)
        )
        new_vertex, attachments = events[0].target
        assert new_vertex == 5
        assert 1 <= len(attachments) <= 2
        mutated = apply_churn_to_graph(ring_graph(5), "add-vertex", events[0].target)
        assert mutated.n == 6 and mutated.is_connected()

    def test_remove_edge_on_a_tree_fails_fast(self):
        with pytest.raises(ExperimentError, match="bridge"):
            compile_events(
                path_graph(5), horizon=10, seed=0,
                churn=(ChurnEvent(step=2, kind="remove-edge"),),
            )

    def test_add_edge_on_complete_graph_fails_fast(self):
        with pytest.raises(ExperimentError, match="complete"):
            compile_events(
                complete_graph(4), horizon=10, seed=0,
                churn=(ChurnEvent(step=2, kind="add-edge"),),
            )

    def test_churn_outside_horizon_fails_fast(self):
        with pytest.raises(ExperimentError, match="outside the horizon"):
            compile_events(
                ring_graph(5), horizon=10, seed=0,
                churn=(ChurnEvent(step=10, kind="add-edge"),),
            )

    def test_fault_model_and_params_validated_at_compile_time(self):
        with pytest.raises(ExperimentError, match="unknown fault model"):
            compile_events(
                ring_graph(5), horizon=10, seed=0,
                schedule=FaultSchedule(kind="one-shot", offset=2),
                fault_model="cosmic-ray",
            )
        with pytest.raises(ExperimentError, match="radius"):
            compile_events(
                ring_graph(5), horizon=10, seed=0,
                schedule=FaultSchedule(kind="one-shot", offset=2),
                fault_model="localized-burst",
                fault_params={"radiis": 1},
            )
        with pytest.raises(ExperimentError, match="without a fault_model"):
            compile_events(
                ring_graph(5), horizon=10, seed=0, fault_params={"radius": 1}
            )

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**32),
        n=st.integers(min_value=5, max_value=12),
        # Only additive churn: repeated removals can exhaust a small graph's
        # admissible targets, which fails fast by design.
        kinds=st.lists(
            st.sampled_from(["add-vertex", "add-edge"]), min_size=0, max_size=4
        ),
    )
    def test_compilation_is_deterministic(self, seed, n, kinds):
        churn = tuple(
            ChurnEvent(step=3 * (i + 1), kind=kind) for i, kind in enumerate(kinds)
        )
        kwargs = dict(
            graph=ring_graph(n),
            horizon=50,
            seed=seed,
            schedule=FaultSchedule(kind="poisson", offset=1, rate=0.1),
            fault_model="single-vertex",
            churn=churn,
        )
        assert compile_events(**kwargs) == compile_events(**kwargs)


# --------------------------------------------------------------------- #
# SafetyTimeline
# --------------------------------------------------------------------- #
class TestSafetyTimeline:
    def test_gapless_contract(self):
        timeline = SafetyTimeline()
        timeline.record(0, True)
        with pytest.raises(ExperimentError, match="gapless"):
            timeline.record(2, True)

    def test_windows_and_metrics(self):
        timeline = SafetyTimeline()
        for index, safe in enumerate([True, False, False, True, False, True]):
            timeline.record(index, safe)
        assert timeline.unsafe_windows() == [(1, 2), (4, 4)]
        assert timeline.longest_unsafe_window() == 2
        assert timeline.availability() == pytest.approx(3 / 6)
        assert timeline.last_unsafe_in(0, 6) == 4
        assert timeline.last_unsafe_in(5, 6) is None

    def test_trailing_unsafe_window_is_closed(self):
        timeline = SafetyTimeline()
        for index, safe in enumerate([True, False, False]):
            timeline.record(index, safe)
        assert timeline.unsafe_windows() == [(1, 2)]


# --------------------------------------------------------------------- #
# transfer_configuration
# --------------------------------------------------------------------- #
class TestTransferConfiguration:
    def test_keeps_valid_states_and_redraws_the_rest(self, rng):
        protocol = build_protocol("unison", ring_graph(6))
        base = protocol.default_configuration()
        bigger = build_protocol(
            "unison", apply_churn_to_graph(ring_graph(6), "add-vertex", (6, (0, 3)))
        )
        moved = transfer_configuration(base, bigger, rng)
        for vertex in range(6):
            assert moved[vertex] == base[vertex]
        assert 6 in moved
        bigger.validate_state(6, moved[6])

    def test_redraws_states_invalidated_by_parameter_shrink(self):
        # Rebuilding unison on a much smaller graph shrinks the clock domain
        # (K = n + 1), so large clock values must be redrawn, not kept.
        big = build_protocol("unison", ring_graph(12))
        top = {v: big.clock.K - 1 for v in range(12)}
        config = big.configuration(top)
        small = build_protocol("unison", ring_graph(12).subgraph(range(4)))
        moved = transfer_configuration(config, small, random.Random(5))
        for vertex in small.graph.vertices:
            small.validate_state(vertex, moved[vertex])


# --------------------------------------------------------------------- #
# run_campaign
# --------------------------------------------------------------------- #
class TestRunCampaign:
    def test_observes_every_index_exactly_once(self):
        result = run_campaign(
            protocol_family="ssme",
            graph=ring_graph(6),
            daemon="sd",
            horizon=40,
            seed=9,
            schedule=FaultSchedule(kind="periodic", offset=5, period=10),
            fault_model="single-vertex",
        )
        assert result.observed_indices == 41  # indices 0..horizon inclusive

    def test_result_is_jsonable_and_stable(self):
        kwargs = dict(
            protocol_family="unison",
            graph=path_graph(5),
            daemon="cd-rr",
            horizon=30,
            seed=4,
            schedule=FaultSchedule(kind="one-shot", offset=3),
            fault_model="global",
            churn=(ChurnEvent(step=10, kind="add-edge"),),
        )
        first = run_campaign(**kwargs).to_dict()
        second = run_campaign(**kwargs).to_dict()
        assert json.dumps(first, sort_keys=True) == json.dumps(second, sort_keys=True)

    def test_adversarial_initial_starts_unsafe(self):
        result = run_campaign(
            protocol_family="ssme",
            graph=ring_graph(10),
            daemon="sd",
            horizon=30,
            seed=2,
            initial="adversarial",
        )
        assert result.availability < 1.0
        assert result.final_safe
        assert not result.unsafe_windows[0][0]  # unsafe from index 0

    def test_unknown_family_and_initial(self):
        with pytest.raises(ExperimentError, match="protocol family"):
            run_campaign("quorum", ring_graph(5), "sd", 10, 0)
        with pytest.raises(ExperimentError, match="initial mode"):
            run_campaign("ssme", ring_graph(5), "sd", 10, 0, initial="hot")

    def test_event_windows_partition_the_timeline(self):
        result = run_campaign(
            protocol_family="dijkstra",
            graph=ring_graph(6),
            daemon="cd",
            horizon=50,
            seed=7,
            schedule=FaultSchedule(kind="periodic", offset=10, period=15),
            fault_model="single-vertex",
        )
        steps = [event.step for event in result.events]
        assert steps == sorted(steps)
        # Last window extends to the end of the timeline.
        assert result.events[-1].window == result.observed_indices - result.events[-1].step


# --------------------------------------------------------------------- #
# Engine equivalence and churn-rebuild equivalence (acceptance criteria)
# --------------------------------------------------------------------- #
ENGINES = ("reference", "incremental", "vector")


class TestEngineEquivalence:
    @pytest.mark.parametrize(
        "name", [scenario.name for scenario in list_scenarios("smoke")]
    )
    def test_smoke_scenarios_identical_across_engines(self, name):
        results = []
        for engine in ENGINES:
            data = run_scenario(name, engine=engine).to_dict()
            data["engine"] = "normalized"
            results.append(json.dumps(data, sort_keys=True))
        assert results[0] == results[1] == results[2]

    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**32),
        family=st.sampled_from(["ssme", "unison"]),
    )
    def test_post_churn_state_matches_rebuild_from_scratch(self, seed, family):
        """After churn, every engine's state equals a from-scratch rebuild.

        The reference engine rebuilds the simulator from scratch on the
        mutated graph each segment, so it is the rebuild oracle; the
        incremental and vector engines instead absorb the churn through
        their index/codec rebuild path and must land on the exact same
        final configuration.
        """
        graph = ring_graph(7)
        churn = (ChurnEvent(step=6, kind="add-vertex"),)
        final_configs = []
        for engine in ENGINES:
            result = run_campaign(
                protocol_family=family,
                graph=graph,
                daemon="cd-rr",
                horizon=14,
                seed=seed,
                churn=churn,
                engine=engine,
            )
            final_configs.append(result.final_configuration)
        assert final_configs[0] == final_configs[1] == final_configs[2]


# --------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------- #
class TestRegistry:
    def test_smoke_tier_is_nonempty_and_small(self):
        smoke = list_scenarios("smoke")
        assert smoke
        for scenario in smoke:
            assert scenario.n <= 8
            assert scenario.horizon <= 100

    def test_names_and_lookup(self):
        names = scenario_names()
        assert names == sorted(names)
        assert set(names) == set(SCENARIOS)
        with pytest.raises(ExperimentError, match="unknown scenario"):
            get_scenario("no-such-campaign")
        with pytest.raises(ExperimentError, match="unknown tier"):
            list_scenarios("warm")

    def test_job_params_round_trip_matches_direct_run(self):
        scenario = get_scenario("smoke-unison-path6-churn")
        direct = scenario.run().to_dict()
        via_params = run_campaign_from_params(scenario.job_params()).to_dict()
        assert json.dumps(direct, sort_keys=True) == json.dumps(
            via_params, sort_keys=True
        )

    def test_scenario_schedule_requires_fault_model(self):
        with pytest.raises(ExperimentError, match="no fault_model"):
            Scenario(
                name="x", protocol="ssme", topology="ring", n=5, daemon="sd",
                horizon=10, seed=0,
                schedule=FaultSchedule(kind="one-shot", offset=2),
            )

    def test_every_scenario_builds_its_graph_and_protocol(self):
        for scenario in list_scenarios():
            graph = scenario.build_graph()
            assert graph.is_connected()
            protocol = build_protocol(scenario.protocol, graph)
            build_specification(scenario.protocol, protocol)
