"""Unit tests for the speculative-stabilization analysis (Definition 4)."""

from __future__ import annotations

import random

import pytest

from repro.core import (
    AdversarialCentralDaemon,
    SynchronousDaemon,
    measure_speculation,
    run_speculation_study,
)
from repro.exceptions import SimulationError
from repro.graphs import diameter, ring_graph
from repro.mutex import DijkstraTokenRing, MutualExclusionSpec
from repro.experiments.workloads import random_configurations


class TestMeasureSpeculation:
    def test_single_graph_measurement(self, rng):
        protocol = DijkstraTokenRing.on_ring(6)
        spec = MutualExclusionSpec(protocol)
        configurations = random_configurations(protocol, 4, rng)
        measurement = measure_speculation(
            protocol=protocol,
            specification=spec,
            strong_daemon_factory=AdversarialCentralDaemon,
            weak_daemon_factory=SynchronousDaemon,
            initial_configurations=configurations,
            strong_horizon=400,
            weak_horizon=60,
            strong_bound=6 * 6,
            weak_bound=3 * 6,
        )
        assert measurement.strong.max_steps is not None
        assert measurement.weak.max_steps is not None
        assert measurement.weak.max_steps <= measurement.strong.max_steps
        assert measurement.speculation_factor is not None
        assert measurement.speculation_factor >= 1.0
        assert measurement.strong.daemon_name == "cd-adv"
        assert measurement.weak.daemon_name == "sd"

    def test_requires_configurations(self):
        protocol = DijkstraTokenRing.on_ring(5)
        spec = MutualExclusionSpec(protocol)
        with pytest.raises(SimulationError):
            measure_speculation(
                protocol=protocol,
                specification=spec,
                strong_daemon_factory=AdversarialCentralDaemon,
                weak_daemon_factory=SynchronousDaemon,
                initial_configurations=[],
                strong_horizon=10,
                weak_horizon=10,
            )

    def test_speculation_factor_edge_cases(self, rng):
        protocol = DijkstraTokenRing.on_ring(5)
        spec = MutualExclusionSpec(protocol)
        # A legitimate configuration stabilizes in 0 steps under both
        # daemons: the factor degenerates to 1.
        measurement = measure_speculation(
            protocol=protocol,
            specification=spec,
            strong_daemon_factory=AdversarialCentralDaemon,
            weak_daemon_factory=SynchronousDaemon,
            initial_configurations=[protocol.legitimate_configuration(0)],
            strong_horizon=100,
            weak_horizon=50,
        )
        assert measurement.weak.max_steps == 0
        assert measurement.speculation_factor in (1.0, float("inf"))


class TestSpeculationStudy:
    @pytest.fixture
    def study(self):
        def workload(protocol, workload_rng):
            return random_configurations(protocol, 4, workload_rng)

        return run_speculation_study(
            protocol_factory=DijkstraTokenRing,
            specification_factory=MutualExclusionSpec,
            graphs=[ring_graph(n) for n in (5, 7, 9)],
            strong_daemon_factory=AdversarialCentralDaemon,
            weak_daemon_factory=SynchronousDaemon,
            workload=workload,
            strong_horizon=lambda p: 8 * p.graph.n * p.graph.n + 100,
            weak_horizon=lambda p: 6 * p.graph.n + 40,
            strong_bound=lambda p: float(2 * p.graph.n**2),
            weak_bound=lambda p: float(3 * p.graph.n),
            rng=random.Random(0),
        )

    def test_study_collects_one_measurement_per_graph(self, study):
        assert len(study.measurements) == 3
        assert study.protocol_name == "dijkstra-token-ring"

    def test_study_orderings(self, study):
        assert study.weak_never_slower
        assert study.all_within_bounds

    def test_study_definition4_verdict(self, study):
        assert study.satisfies_definition4(min_final_factor=1.0)

    def test_study_rows(self, study):
        rows = study.as_rows()
        assert len(rows) == 3
        assert {"n", "strong_steps", "weak_steps", "speculation_factor"} <= set(rows[0])
        assert [row["n"] for row in rows] == [5, 7, 9]

    def test_factors_are_at_least_one(self, study):
        for factor in study.speculation_factors():
            assert factor is None or factor >= 1.0
