"""Unit tests for the SSME protocol (Algorithm 1)."""

from __future__ import annotations

import random

import pytest

from repro.exceptions import ProtocolError
from repro.graphs import Graph, diameter, grid_graph, path_graph, ring_graph, star_graph
from repro.mutex import SSME, ssme_clock_size, ssme_privileged_value


class TestParameters:
    def test_clock_size_formula(self):
        # K = (2n - 1)(diam + 1) + 2
        assert ssme_clock_size(5, 2) == 9 * 3 + 2
        assert ssme_clock_size(1, 0) == 3

    def test_clock_size_validation(self):
        with pytest.raises(ProtocolError):
            ssme_clock_size(0, 2)
        with pytest.raises(ProtocolError):
            ssme_clock_size(3, -1)

    def test_privileged_value_formula(self):
        assert ssme_privileged_value(5, 2, 0) == 10
        assert ssme_privileged_value(5, 2, 3) == 10 + 12

    def test_privileged_value_validation(self):
        with pytest.raises(ProtocolError):
            ssme_privileged_value(5, 2, 5)

    def test_protocol_parameters_on_ring(self):
        protocol = SSME(ring_graph(8))
        assert protocol.alpha == 8
        assert protocol.diam == 4
        assert protocol.K == (2 * 8 - 1) * (4 + 1) + 2

    def test_paper_boundary_values(self):
        """The paper notes privileged(v0) = 2n and
        privileged(v_{n-1}) = (2n-2)(diam+1)+2."""
        protocol = SSME(path_graph(6))
        n, diam = 6, 5
        assert protocol.privileged_value(protocol.vertex_with_identity(0)) == 2 * n
        assert (
            protocol.privileged_value(protocol.vertex_with_identity(n - 1))
            == (2 * n - 2) * (diam + 1) + 2
        )

    def test_every_privileged_value_is_a_correct_clock_value(self):
        for graph in (ring_graph(7), path_graph(5), star_graph(6), grid_graph(3, 3)):
            protocol = SSME(graph)
            for vertex in graph.vertices:
                value = protocol.privileged_value(vertex)
                assert protocol.clock.is_correct(value)

    def test_privileged_values_pairwise_distance_exceeds_diameter(self):
        """The clock-size choice guarantees d_K between any two privileged
        values is strictly larger than diam(g) — the core of Theorem 1."""
        for graph in (ring_graph(8), path_graph(7), grid_graph(3, 3)):
            protocol = SSME(graph)
            values = [protocol.privileged_value(v) for v in graph.vertices]
            for i, a in enumerate(values):
                for b in values[i + 1 :]:
                    assert protocol.clock.distance(a, b) > protocol.diam

    def test_explicit_diameter_must_match(self):
        with pytest.raises(ProtocolError):
            SSME(ring_graph(8), diam=7)

    def test_explicit_matching_diameter_accepted(self):
        protocol = SSME(ring_graph(8), diam=4)
        assert protocol.diam == 4

    def test_single_vertex_graph(self):
        protocol = SSME(Graph([0], []))
        assert protocol.diam == 0
        assert protocol.K == 3
        assert protocol.privileged_value(0) == 2

    def test_bounds(self):
        protocol = SSME(ring_graph(10))
        assert protocol.synchronous_stabilization_bound() == 3  # ceil(5/2)
        n, diam = 10, 5
        assert protocol.unfair_stabilization_bound() == 2 * diam * n**3 + (n + 1) * n**2 + (n - 2 * diam) * n


class TestIdentities:
    def test_integer_labels_are_their_own_identities(self):
        protocol = SSME(ring_graph(5))
        for v in range(5):
            assert protocol.identity(v) == v
            assert protocol.vertex_with_identity(v) == v

    def test_non_integer_labels_get_sorted_identities(self):
        graph = Graph(["a", "b", "c"], [("a", "b"), ("b", "c")])
        protocol = SSME(graph)
        assert protocol.identity("a") == 0
        assert protocol.identity("c") == 2

    def test_unknown_vertex(self):
        protocol = SSME(ring_graph(4))
        with pytest.raises(ProtocolError):
            protocol.identity(9)
        with pytest.raises(ProtocolError):
            protocol.privileged_value(9)
        with pytest.raises(ProtocolError):
            protocol.vertex_with_identity(77)


class TestPrivilege:
    def test_is_privileged_matches_value(self):
        protocol = SSME(ring_graph(5))
        gamma = protocol.legitimate_configuration(protocol.privileged_value(2))
        # Every vertex holds vertex 2's privileged value; only vertex 2 is
        # privileged because the values are distinct per identity.
        assert protocol.is_privileged(gamma, 2)
        assert protocol.privileged_vertices(gamma) == frozenset({2})

    def test_no_privilege_in_default_configuration(self):
        protocol = SSME(ring_graph(5))
        assert protocol.privileged_vertices(protocol.default_configuration()) == frozenset()

    def test_runs_on_any_topology(self):
        """Unlike Dijkstra's protocol, SSME accepts arbitrary connected graphs."""
        for graph in (star_graph(6), grid_graph(3, 4), path_graph(9)):
            protocol = SSME(graph)
            assert protocol.graph is graph
