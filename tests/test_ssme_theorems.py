"""Empirical checks of Theorems 1, 2 and 3 for SSME.

These are the heart of the reproduction: every theorem of Section 4 is
checked on executions of the actual protocol.
"""

from __future__ import annotations

import random

import pytest

from repro.core import (
    AdversarialCentralDaemon,
    CentralDaemon,
    DistributedDaemon,
    Simulator,
    StarvationDaemon,
    SynchronousDaemon,
    measure_stabilization,
    observed_stabilization_index,
    synchronous_execution,
)
from repro.graphs import grid_graph, path_graph, ring_graph, star_graph
from repro.lowerbound import adversarial_mutex_configurations
from repro.mutex import SSME, MutualExclusionSpec
from repro.unison import AsynchronousUnisonSpec


GRAPHS = {
    "ring8": ring_graph(8),
    "path7": path_graph(7),
    "star6": star_graph(6),
    "grid3x3": grid_graph(3, 3),
}


@pytest.fixture(params=sorted(GRAPHS))
def protocol(request) -> SSME:
    return SSME(GRAPHS[request.param])


class TestTheorem1SelfStabilization:
    """SSME is self-stabilizing for spec_ME under unfair-style daemons."""

    @pytest.mark.parametrize(
        "daemon_factory",
        [
            SynchronousDaemon,
            CentralDaemon,
            lambda: DistributedDaemon(0.4),
            AdversarialCentralDaemon,
            StarvationDaemon,
        ],
        ids=["sd", "cd", "dd", "cd-adv", "ud-starve"],
    )
    def test_convergence_to_mutual_exclusion(self, protocol, daemon_factory, rng):
        spec = MutualExclusionSpec(protocol)
        horizon = 25 * protocol.graph.n * (protocol.alpha + protocol.diam) + 200
        for _ in range(3):
            gamma = protocol.random_configuration(rng)
            simulator = Simulator(protocol, daemon_factory(), rng=random.Random(rng.randrange(2**32)))
            execution = simulator.run(
                gamma,
                max_steps=horizon,
                stop_when=lambda config, index: protocol.is_legitimate(config),
            )
            # The unison converges to Γ₁ ...
            assert protocol.is_legitimate(execution.final)
            # ... and from the last unsafe configuration onward safety holds.
            assert observed_stabilization_index(execution, spec, protocol) is not None

    def test_safety_holds_forever_after_gamma1(self, protocol, rng):
        """Once in Γ₁, no two vertices are ever privileged simultaneously,
        under an arbitrary (randomly scheduled) daemon."""
        spec = MutualExclusionSpec(protocol)
        gamma = protocol.legitimate_configuration(0)
        for _ in range(200):
            assert spec.is_safe(gamma, protocol)
            enabled = protocol.enabled_vertices(gamma)
            selection = [v for v in enabled if rng.random() < 0.5] or [next(iter(enabled))]
            gamma, _ = protocol.apply(gamma, selection)

    def test_liveness_every_vertex_enters_critical_section(self, protocol):
        spec = MutualExclusionSpec(protocol)
        execution = synchronous_execution(
            protocol, protocol.legitimate_configuration(0), protocol.K + protocol.diam + 2
        )
        assert spec.check_liveness(execution, protocol, 0)


class TestTheorem2SynchronousUpperBound:
    def test_random_configurations_respect_bound(self, protocol, rng):
        spec = MutualExclusionSpec(protocol)
        bound = protocol.synchronous_stabilization_bound()
        for _ in range(10):
            gamma = protocol.random_configuration(rng)
            measurement = measure_stabilization(
                protocol, SynchronousDaemon(), gamma, spec, horizon=protocol.K + 4 * protocol.alpha
            )
            assert measurement.stabilized
            assert measurement.stabilization_steps <= bound

    def test_adversarial_configurations_respect_and_reach_bound(self, protocol, rng):
        spec = MutualExclusionSpec(protocol)
        bound = protocol.synchronous_stabilization_bound()
        worst = 0
        for gamma in adversarial_mutex_configurations(protocol, rng, random_count=4):
            measurement = measure_stabilization(
                protocol, SynchronousDaemon(), gamma, spec, horizon=protocol.K + 4 * protocol.alpha
            )
            assert measurement.stabilized
            assert measurement.stabilization_steps <= bound
            worst = max(worst, measurement.stabilization_steps)
        assert worst == bound  # tightness on every test graph (diam >= 1)


class TestTheorem3UnfairUpperBound:
    def test_unfair_style_schedulers_respect_cubic_bound(self, protocol, rng):
        mutex_spec = MutualExclusionSpec(protocol)
        unison_spec = AsynchronousUnisonSpec(protocol)
        bound = protocol.unfair_stabilization_bound()
        horizon = min(bound, 30 * protocol.graph.n * (protocol.alpha + protocol.diam) + 200)
        for daemon_factory in (CentralDaemon, StarvationDaemon):
            gamma = protocol.random_configuration(rng)
            simulator = Simulator(protocol, daemon_factory(), rng=random.Random(7))
            execution = simulator.run(
                gamma,
                max_steps=horizon,
                stop_when=lambda config, index: protocol.is_legitimate(config),
            )
            assert protocol.is_legitimate(execution.final)
            unison_steps = observed_stabilization_index(execution, unison_spec, protocol)
            mutex_steps = observed_stabilization_index(execution, mutex_spec, protocol)
            assert unison_steps is not None and unison_steps <= bound
            assert mutex_steps is not None and mutex_steps <= unison_steps
