"""Unit tests for specifications and stabilization measurement."""

from __future__ import annotations

import random

import pytest

from repro.core import (
    CentralDaemon,
    SynchronousDaemon,
    measure_stabilization,
    observed_stabilization_index,
    worst_case_stabilization,
    synchronous_execution,
)
from repro.exceptions import SimulationError, SpecificationError
from repro.graphs import path_graph, ring_graph
from repro.mutex import SSME, MutualExclusionSpec
from repro.unison import AsynchronousUnison, AsynchronousUnisonSpec


@pytest.fixture
def protocol():
    return SSME(ring_graph(6))


@pytest.fixture
def spec(protocol):
    return MutualExclusionSpec(protocol)


class TestSpecificationHelpers:
    def test_first_and_last_unsafe_index(self, protocol, spec):
        # Configuration with two privileged vertices, fixed by one sync step.
        from repro.lowerbound import immediate_double_privilege_configuration

        gamma = immediate_double_privilege_configuration(protocol)
        execution = synchronous_execution(protocol, gamma, 10)
        first = spec.first_unsafe_index(execution, protocol)
        last = spec.last_unsafe_index(execution, protocol)
        assert first == 0
        assert last is not None and last >= first

    def test_safe_execution_has_no_unsafe_index(self, protocol, spec):
        gamma = protocol.legitimate_configuration(0)
        execution = synchronous_execution(protocol, gamma, 10)
        assert spec.first_unsafe_index(execution, protocol) is None
        assert spec.last_unsafe_index(execution, protocol) is None

    def test_satisfied_by_checks_start_bounds(self, protocol, spec):
        execution = synchronous_execution(protocol, protocol.legitimate_configuration(0), 5)
        with pytest.raises(SpecificationError):
            spec.satisfied_by(execution, protocol, start=99)

    def test_satisfied_by_safe_suffix(self, protocol, spec):
        execution = synchronous_execution(protocol, protocol.legitimate_configuration(0), 5)
        # Safety holds everywhere; liveness needs a window of a full clock
        # period, so only the safety part is verified here.
        assert spec.first_unsafe_index(execution, protocol) is None


class TestObservedStabilizationIndex:
    def test_zero_when_always_safe(self, protocol, spec):
        execution = synchronous_execution(protocol, protocol.legitimate_configuration(0), 8)
        assert observed_stabilization_index(execution, spec, protocol) == 0

    def test_none_when_final_configuration_unsafe(self, protocol, spec):
        from repro.lowerbound import immediate_double_privilege_configuration

        gamma = immediate_double_privilege_configuration(protocol)
        execution = synchronous_execution(protocol, gamma, 0)
        assert observed_stabilization_index(execution, spec, protocol) is None

    def test_positive_when_violation_is_transient(self, protocol, spec):
        from repro.lowerbound import immediate_double_privilege_configuration

        gamma = immediate_double_privilege_configuration(protocol)
        execution = synchronous_execution(protocol, gamma, 20)
        index = observed_stabilization_index(execution, spec, protocol)
        assert index is not None and index >= 1


class TestMeasureStabilization:
    def test_measure_on_legitimate_configuration(self, protocol, spec):
        measurement = measure_stabilization(
            protocol,
            SynchronousDaemon(),
            protocol.legitimate_configuration(0),
            spec,
            horizon=protocol.K + 10,
            check_liveness=True,
        )
        assert measurement.stabilized
        assert measurement.stabilization_steps == 0
        assert measurement.liveness_checked
        assert measurement.liveness_ok

    def test_measure_without_liveness(self, protocol, spec):
        measurement = measure_stabilization(
            protocol,
            SynchronousDaemon(),
            protocol.legitimate_configuration(0),
            spec,
            horizon=5,
        )
        assert not measurement.liveness_checked
        assert measurement.liveness_ok is None

    def test_measure_respects_theorem2_bound(self, protocol, spec, rng):
        bound = protocol.synchronous_stabilization_bound()
        for _ in range(10):
            gamma = protocol.random_configuration(rng)
            measurement = measure_stabilization(
                protocol, SynchronousDaemon(), gamma, spec, horizon=protocol.K + 40
            )
            assert measurement.stabilized
            assert measurement.stabilization_steps <= bound

    def test_rounds_are_recorded(self, protocol, spec):
        measurement = measure_stabilization(
            protocol,
            SynchronousDaemon(),
            protocol.legitimate_configuration(0),
            spec,
            horizon=6,
        )
        assert measurement.rounds == 6


class TestWorstCase:
    def test_worst_case_over_configurations(self, protocol, spec, rng):
        configurations = [protocol.random_configuration(rng) for _ in range(4)]
        result = worst_case_stabilization(
            protocol,
            SynchronousDaemon,
            spec,
            configurations,
            horizon=protocol.K + 40,
        )
        assert result.all_stabilized
        assert result.max_steps is not None
        assert result.max_steps <= protocol.synchronous_stabilization_bound()
        assert result.mean_steps is not None
        assert len(result.measurements) == 4

    def test_worst_case_multiple_runs_randomized_daemon(self, rng):
        unison = AsynchronousUnison(path_graph(4))
        spec = AsynchronousUnisonSpec(unison)
        configurations = [unison.random_configuration(rng) for _ in range(2)]
        result = worst_case_stabilization(
            unison,
            CentralDaemon,
            spec,
            configurations,
            horizon=400,
            runs_per_configuration=2,
        )
        assert len(result.measurements) == 4
        assert result.all_stabilized

    def test_worst_case_rejects_bad_runs_parameter(self, protocol, spec):
        with pytest.raises(SimulationError):
            worst_case_stabilization(
                protocol,
                SynchronousDaemon,
                spec,
                [protocol.legitimate_configuration(0)],
                horizon=5,
                runs_per_configuration=0,
            )

    def test_unstabilized_run_is_reported(self, protocol, spec):
        from repro.lowerbound import immediate_double_privilege_configuration

        # Horizon 0: the double-privilege configuration never gets a chance
        # to be fixed, so the measurement reports a failure to stabilize.
        result = worst_case_stabilization(
            protocol,
            SynchronousDaemon,
            spec,
            [immediate_double_privilege_configuration(protocol)],
            horizon=0,
        )
        assert not result.all_stabilized
        assert result.max_steps is None
