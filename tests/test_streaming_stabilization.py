"""The streaming measurement pipeline.

Three properties are pinned here:

* **streaming ≡ trace walk** — the online :class:`SafetyMonitor` (riding
  ``stop_when``) reports exactly the stabilization indices that the classic
  post-hoc trace walk computes, for every protocol of the library, several
  daemons and both trace modes (and the one-pass multi-spec walker agrees
  with the per-spec walks);
* **light-trace memory bound** — a full safety scan of a light execution
  retains only O(steps / checkpoint-stride) configurations, it does not
  silently materialize the whole trace (the bug this PR fixes);
* **knob threading** — the Definition 4 speculation helpers forward
  ``engine``/``check_liveness``/``trace`` to the underlying measurement.
"""

from __future__ import annotations

import random

import pytest

from repro.baselines import BfsSpanningTree, BfsTreeSpec, MaximalMatching, MaximalMatchingSpec
from repro.core import (
    CentralDaemon,
    DistributedDaemon,
    LazyConfigurationTrace,
    SafetyMonitor,
    Simulator,
    SynchronousDaemon,
    measure_speculation,
    measure_stabilization,
    observed_stabilization_index,
    observed_stabilization_indices,
)
from repro.exceptions import SimulationError
from repro.graphs import random_connected_graph, ring_graph
from repro.mutex import SSME, DijkstraTokenRing, MutualExclusionSpec
from repro.unison import AsynchronousUnison, AsynchronousUnisonSpec


def _protocol_and_specs(name):
    graph = ring_graph(6)
    if name == "ssme":
        protocol = SSME(graph)
        return protocol, [MutualExclusionSpec(protocol), AsynchronousUnisonSpec(protocol)]
    if name == "unison":
        protocol = AsynchronousUnison(graph)
        return protocol, [AsynchronousUnisonSpec(protocol)]
    if name == "dijkstra":
        protocol = DijkstraTokenRing(graph)
        return protocol, [MutualExclusionSpec(protocol)]
    if name == "bfs":
        protocol = BfsSpanningTree(random_connected_graph(6, 0.4, random.Random(5)))
        return protocol, [BfsTreeSpec(protocol)]
    if name == "matching":
        protocol = MaximalMatching(random_connected_graph(6, 0.4, random.Random(5)))
        return protocol, [MaximalMatchingSpec(protocol)]
    raise AssertionError(name)


PROTOCOL_NAMES = ("ssme", "unison", "dijkstra", "bfs", "matching")

DAEMONS = {
    "sd": SynchronousDaemon,
    "cd": CentralDaemon,
    "dd": lambda: DistributedDaemon(0.6),
}


class TestStreamingEqualsTraceWalk:
    @pytest.mark.parametrize("protocol_name", PROTOCOL_NAMES)
    @pytest.mark.parametrize("daemon_name", sorted(DAEMONS))
    @pytest.mark.parametrize("trace", ["full", "light"])
    def test_monitor_matches_post_hoc_walk(self, protocol_name, daemon_name, trace):
        protocol, specs = _protocol_and_specs(protocol_name)
        initial = protocol.random_configuration(random.Random(7))
        steps = 60

        # Plain run -> classic post-hoc walks.
        plain = Simulator(
            protocol, DAEMONS[daemon_name](), rng=random.Random(11), trace=trace
        ).run(initial, max_steps=steps)
        walked = [observed_stabilization_index(plain, spec, protocol) for spec in specs]

        # Identical run observed online by the monitor.
        monitor = SafetyMonitor(specs, protocol)
        monitored = Simulator(
            protocol, DAEMONS[daemon_name](), rng=random.Random(11), trace=trace
        ).run(initial, max_steps=steps, stop_when=monitor.observe)

        assert monitored.steps == plain.steps
        assert monitor.observed_steps == plain.steps
        for spec, expected in zip(specs, walked):
            assert monitor.stabilization_index(spec) == expected
            assert monitor.last_unsafe_index(spec) == spec.last_unsafe_index(
                plain, protocol
            )
            assert monitor.first_unsafe_index(spec) == spec.first_unsafe_index(
                plain, protocol
            )

        # The one-pass multi-spec walker agrees with the per-spec walks.
        assert observed_stabilization_indices(plain, specs, protocol) == walked

    def test_monitor_rejects_gapped_observations(self):
        protocol, specs = _protocol_and_specs("unison")
        monitor = SafetyMonitor(specs, protocol)
        configuration = protocol.default_configuration()
        assert monitor.observe(configuration, 0) is False
        with pytest.raises(SimulationError):
            monitor.observe(configuration, 2)
        monitor.reset()
        assert monitor.observe(configuration, 0) is False

    def test_monitor_requires_a_specification(self):
        protocol, _ = _protocol_and_specs("unison")
        with pytest.raises(SimulationError):
            SafetyMonitor([], protocol)

    def test_wrapped_stop_when_sees_recorded_observation(self):
        """The wrapped predicate runs after the observation, so it can stop
        on the monitored verdict of the configuration under decision."""
        protocol, specs = _protocol_and_specs("unison")
        spec = specs[0]
        initial = protocol.random_configuration(random.Random(3))
        monitor = SafetyMonitor(
            [spec], protocol, stop_when=lambda c, i: monitor.is_currently_safe(spec)
        )
        execution = Simulator(
            protocol, SynchronousDaemon(), rng=random.Random(0), trace="light"
        ).run(initial, max_steps=500, stop_when=monitor.observe)
        # Stopped exactly at the first safe configuration.
        assert spec.is_safe(execution.final, protocol)
        if execution.steps:
            assert monitor.last_unsafe_index(spec) == execution.steps - 1


class TestMeasureStabilizationStreaming:
    @pytest.mark.parametrize("trace", ["full", "light"])
    def test_measure_matches_classic_walk(self, trace):
        protocol = SSME(ring_graph(6))
        spec = MutualExclusionSpec(protocol)
        initial = protocol.random_configuration(random.Random(1))
        measurement = measure_stabilization(
            protocol=protocol,
            daemon=SynchronousDaemon(),
            initial=initial,
            specification=spec,
            horizon=protocol.K + 4 * protocol.alpha + 16,
            rng=random.Random(2),
            check_liveness=True,
            trace=trace,
        )
        execution = Simulator(
            protocol, SynchronousDaemon(), rng=random.Random(2)
        ).run(initial, max_steps=protocol.K + 4 * protocol.alpha + 16)
        assert measurement.stabilization_steps == observed_stabilization_index(
            execution, spec, protocol
        )
        assert measurement.execution_steps == execution.steps
        assert measurement.rounds == execution.count_rounds()
        assert measurement.liveness_checked
        assert measurement.liveness_ok


class TestLightTraceMemoryBound:
    def test_full_safety_scan_keeps_cache_bounded(self):
        """A 10k-step light execution scanned end to end for safety retains
        O(steps/stride) configurations, not one per step."""
        steps = 10_000
        protocol = AsynchronousUnison(ring_graph(4), validate_parameters=False)
        spec = AsynchronousUnisonSpec(protocol)
        initial = protocol.random_configuration(random.Random(0))
        execution = Simulator(
            protocol, SynchronousDaemon(), rng=random.Random(1), trace="light"
        ).run(initial, max_steps=steps)
        assert execution.steps == steps
        trace = execution._configurations
        assert isinstance(trace, LazyConfigurationTrace)

        spec.last_unsafe_index(execution, protocol)
        spec.first_unsafe_index(execution, protocol)
        observed_stabilization_indices(execution, [spec], protocol)

        bound = steps // LazyConfigurationTrace._CHECKPOINT_STRIDE + 2
        assert trace.materialized_count <= bound

    def test_iter_from_matches_indexed_access(self):
        protocol = AsynchronousUnison(ring_graph(5), validate_parameters=False)
        initial = protocol.random_configuration(random.Random(4))
        light = Simulator(
            protocol, CentralDaemon(), rng=random.Random(5), trace="light"
        ).run(initial, max_steps=90)
        full = Simulator(
            protocol, CentralDaemon(), rng=random.Random(5), trace="full"
        ).run(initial, max_steps=90)
        for start in (0, 1, 33, light.steps):
            assert list(light.iter_configurations(start)) == list(
                full.configurations
            )[start:]
        with pytest.raises(SimulationError):
            light.iter_configurations(light.steps + 1)


class TestSpeculationKnobThreading:
    def test_engine_liveness_and_trace_reach_measurements(self):
        protocol = DijkstraTokenRing.on_ring(5)
        spec = MutualExclusionSpec(protocol)
        configurations = [protocol.random_configuration(random.Random(9))]
        measurement = measure_speculation(
            protocol=protocol,
            specification=spec,
            strong_daemon_factory=CentralDaemon,
            weak_daemon_factory=SynchronousDaemon,
            initial_configurations=configurations,
            strong_horizon=400,
            weak_horizon=80,
            rng=random.Random(0),
            check_liveness=True,
            engine="reference",
            trace="light",
        )
        for profile in (measurement.strong, measurement.weak):
            assert profile.worst_case.all_stabilized
            # check_liveness reached worst_case_stabilization: the liveness
            # verdict was actually computed for every stabilized run.
            for m in profile.worst_case.measurements:
                assert m.liveness_checked
                assert m.liveness_ok is not None

    def test_reference_oracle_agrees_with_incremental(self):
        protocol = DijkstraTokenRing.on_ring(6)
        spec = MutualExclusionSpec(protocol)
        configurations = [protocol.random_configuration(random.Random(2))]
        results = {}
        for engine in ("incremental", "reference"):
            study = measure_speculation(
                protocol=protocol,
                specification=spec,
                strong_daemon_factory=CentralDaemon,
                weak_daemon_factory=SynchronousDaemon,
                initial_configurations=configurations,
                strong_horizon=400,
                weak_horizon=80,
                rng=random.Random(3),
                engine=engine,
            )
            results[engine] = (study.strong.max_steps, study.weak.max_steps)
        assert results["incremental"] == results["reference"]
