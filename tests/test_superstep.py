"""Unit tests for the batched superstep execution path.

The engine equivalence suite pins ``vector-superstep`` trace-for-trace
against the reference engine through the simulator; these tests drive
:meth:`VectorEngine.run_supersteps` directly at adversarial cadences
(superstep 1, 3, 5 against traces hundreds of steps long) and pin the
pieces the batched loop adds over the single-step path: checkpointed
replay at non-checkpoint indices, mid-block ``stop_when`` rollback,
mid-block terminal detection, the fixed-point fast-forward, the
vectorized sparse guard refresh (subset kernels), and the vectorized
privilege fast path of ``spec_ME``.  Everything here needs real NumPy;
the no-NumPy degradation is covered in ``test_engine_equivalence``.
"""

from __future__ import annotations

import random

import pytest

np = pytest.importorskip("numpy")

from repro.core import (
    ArrayKernel,
    CentralDaemon,
    Configuration,
    GraphIndex,
    IntCodec,
    Protocol,
    Rule,
    Simulator,
    SynchronousDaemon,
    VectorEngine,
)
from repro.exceptions import SimulationError
from repro.graphs import random_connected_graph, ring_graph
from repro.mutex import SSME, DijkstraTokenRing
from repro.mutex.specification import MutualExclusionSpec
from repro.unison import AsynchronousUnison


def _records(execution, index):
    return sorted(
        (r.vertex, r.rule_name, r.old_state, r.new_state)
        for r in execution.activation_records(index)
    )


def _assert_same_trace(actual, expected):
    assert actual.steps == expected.steps
    assert actual.truncated == expected.truncated
    for i in range(expected.steps + 1):
        assert dict(actual.configuration(i)) == dict(expected.configuration(i)), i
    for i in range(expected.steps):
        assert actual.selection(i) == expected.selection(i), i
        assert actual.enabled_at(i) == expected.enabled_at(i), i
        assert _records(actual, i) == _records(expected, i), i


PROTOCOLS = {
    "ssme": lambda: SSME(ring_graph(12)),
    "unison": lambda: AsynchronousUnison(ring_graph(11), validate_parameters=False),
    "dijkstra": lambda: DijkstraTokenRing(ring_graph(9)),
}


@pytest.mark.parametrize("protocol_name", sorted(PROTOCOLS))
@pytest.mark.parametrize("superstep", [1, 3, 5, 64])
@pytest.mark.parametrize("trace", ["full", "light"])
def test_supersteps_match_single_step_at_every_cadence(
    protocol_name, superstep, trace
):
    """Block boundaries at awkward cadences never shift the trace."""
    protocol = PROTOCOLS[protocol_name]()
    initial = protocol.random_configuration(random.Random(7))
    engine = VectorEngine(protocol)
    single = engine.run(
        SynchronousDaemon(), random.Random(0), initial, max_steps=200, trace=trace
    )
    batched = engine.run_supersteps(
        SynchronousDaemon(),
        random.Random(0),
        initial,
        max_steps=200,
        trace=trace,
        superstep=superstep,
    )
    _assert_same_trace(batched, single)


@pytest.mark.parametrize("trace", ["full", "light"])
def test_light_trace_random_access_at_non_checkpoint_indices(trace):
    """Replayed configurations are exact at arbitrary indices, visited in
    arbitrary order (backward seeks reload the nearest checkpoint)."""
    protocol = SSME(ring_graph(10))
    initial = protocol.random_configuration(random.Random(3))
    engine = VectorEngine(protocol)
    oracle = engine.run(
        SynchronousDaemon(), random.Random(0), initial, max_steps=150, trace="full"
    )
    batched = engine.run_supersteps(
        SynchronousDaemon(),
        random.Random(0),
        initial,
        max_steps=150,
        trace=trace,
        superstep=64,
    )
    for i in (150, 1, 63, 64, 65, 0, 127, 30, 128, 129, 99, 2):
        assert dict(batched.configuration(i)) == dict(oracle.configuration(i)), i
    for i in (149, 5, 64, 63, 100):
        assert _records(batched, i) == _records(oracle, i), i
    assert batched.count_rounds() == oracle.count_rounds()


@pytest.mark.parametrize("target", [0, 1, 6, 63, 64, 65, 130])
def test_stop_when_rolls_back_to_the_exact_step(target):
    """A mid-block trigger keeps exactly the single-step prefix."""
    protocol = SSME(ring_graph(10))
    initial = protocol.random_configuration(random.Random(5))
    engine = VectorEngine(protocol)

    def runner(run, **kwargs):
        seen = []

        def stop_when(configuration, index):
            seen.append(index)
            return index >= target

        execution = run(
            SynchronousDaemon(),
            random.Random(0),
            initial,
            max_steps=200,
            stop_when=stop_when,
            **kwargs,
        )
        return execution, seen

    single, seen_single = runner(engine.run)
    batched, seen_batched = runner(engine.run_supersteps, superstep=4)
    # The predicate observes the same gapless index sequence...
    assert seen_batched == seen_single == list(range(target + 1))
    # ...and the recorded prefixes are identical.
    _assert_same_trace(batched, single)
    assert batched.steps == target
    assert batched.truncated


def test_supersteps_require_a_synchronous_daemon():
    protocol = SSME(ring_graph(6))
    engine = VectorEngine(protocol)
    initial = protocol.random_configuration(random.Random(1))
    with pytest.raises(SimulationError):
        engine.run_supersteps(
            CentralDaemon(), random.Random(0), initial, max_steps=10
        )
    with pytest.raises(SimulationError):
        engine.run_supersteps(
            SynchronousDaemon(), random.Random(0), initial, max_steps=10, superstep=0
        )


# --------------------------------------------------------------------- #
# Terminal detection and fixed points inside a block
# --------------------------------------------------------------------- #
class CountdownProtocol(Protocol):
    """Each vertex counts its own state down to 0, then disables —
    terminates mid-block after max(initial) steps."""

    name = "countdown"
    actions_preserve_validity = True

    def __init__(self, graph):
        super().__init__(graph)
        self._rules = [
            Rule("tick", lambda view: view.state > 0, lambda view: view.state - 1)
        ]

    def rules(self):
        return self._rules

    def random_state(self, vertex, rng):
        return rng.randrange(12)

    def array_codec(self):
        return IntCodec()

    def array_kernel(self):
        return CountdownKernel()


class CountdownKernel(ArrayKernel):
    rule_names = ("tick",)

    def enabled_rules(self, states, index):
        return np.where(states[:, 0] > 0, np.int64(0), np.int64(-1))

    def fire(self, states, selected, rule_ids, index):
        return states[selected] - 1


class StutterProtocol(Protocol):
    """Always enabled, never changes — the eternal fixed point."""

    name = "stutter"
    actions_preserve_validity = True

    def __init__(self, graph):
        super().__init__(graph)
        self._rules = [Rule("stay", lambda view: True, lambda view: view.state)]

    def rules(self):
        return self._rules

    def random_state(self, vertex, rng):
        return rng.randrange(5)

    def array_codec(self):
        return IntCodec()

    def array_kernel(self):
        return StutterKernel()


class StutterKernel(ArrayKernel):
    rule_names = ("stay",)

    def enabled_rules(self, states, index):
        return np.zeros(index.n, dtype=np.int64)

    def fire(self, states, selected, rule_ids, index):
        return states[selected]


@pytest.mark.parametrize("trace", ["full", "light"])
def test_terminal_detected_mid_block(trace):
    protocol = CountdownProtocol(ring_graph(7))
    initial = protocol.random_configuration(random.Random(9))
    horizon = max(dict(initial).values())
    engine = VectorEngine(protocol)
    single = engine.run(
        SynchronousDaemon(), random.Random(0), initial, max_steps=500, trace=trace
    )
    batched = engine.run_supersteps(
        SynchronousDaemon(),
        random.Random(0),
        initial,
        max_steps=500,
        trace=trace,
        superstep=64,
    )
    assert batched.steps == single.steps == horizon
    assert batched.is_terminal and not batched.truncated
    _assert_same_trace(batched, single)


@pytest.mark.parametrize("trace", ["full", "light"])
def test_fixed_point_fast_forwards_the_remaining_budget(trace):
    protocol = StutterProtocol(ring_graph(6))
    initial = protocol.random_configuration(random.Random(2))
    engine = VectorEngine(protocol)
    single = engine.run(
        SynchronousDaemon(), random.Random(0), initial, max_steps=300, trace=trace
    )
    batched = engine.run_supersteps(
        SynchronousDaemon(),
        random.Random(0),
        initial,
        max_steps=300,
        trace=trace,
        superstep=64,
    )
    assert batched.steps == single.steps == 300
    assert batched.truncated
    for i in (0, 1, 150, 299, 300):
        assert dict(batched.configuration(i)) == dict(single.configuration(i))
        if i < 300:
            assert batched.selection(i) == single.selection(i)
            assert _records(batched, i) == _records(single, i)


# --------------------------------------------------------------------- #
# Vectorized sparse guard refresh: subset kernels
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("graph_seed", [0, 3, 8])
@pytest.mark.parametrize("state_seed", [1, 6, 11])
def test_unison_subset_guards_match_full_scan(graph_seed, state_seed):
    graph = random_connected_graph(14, 0.3, random.Random(graph_seed))
    protocol = AsynchronousUnison(graph, validate_parameters=False)
    kernel = protocol.array_kernel()
    codec = protocol.array_codec()
    index = GraphIndex(graph)
    kernel.prepare(index)
    configuration = protocol.random_configuration(random.Random(state_seed))
    states = codec.encode(configuration, index.vertices)
    full = kernel.enabled_rules(states, index)
    rng = random.Random(state_seed + 100)
    for size in (0, 1, 3, 7, index.n):
        rows = np.array(
            sorted(rng.sample(range(index.n), size)), dtype=np.int64
        )
        subset = kernel.enabled_rules_for(states, rows, index)
        assert np.array_equal(subset, full[rows])


@pytest.mark.parametrize("state_seed", [0, 5, 9])
def test_dijkstra_subset_guards_match_full_scan(state_seed):
    protocol = DijkstraTokenRing(ring_graph(11))
    kernel = protocol.array_kernel()
    codec = protocol.array_codec()
    index = GraphIndex(protocol.graph)
    kernel.prepare(index)
    configuration = protocol.random_configuration(random.Random(state_seed))
    states = codec.encode(configuration, index.vertices)
    full = kernel.enabled_rules(states, index)
    rng = random.Random(state_seed + 100)
    for size in (0, 1, 4, index.n):
        rows = np.array(
            sorted(rng.sample(range(index.n), size)), dtype=np.int64
        )
        subset = kernel.enabled_rules_for(states, rows, index)
        assert np.array_equal(subset, full[rows])


def test_subset_refresh_keeps_sparse_selections_exact():
    """A central daemon forced onto the vector backend exercises the
    in-place ``rule_ids`` patching on every action."""
    protocol = AsynchronousUnison(ring_graph(24), validate_parameters=False)
    initial = protocol.random_configuration(random.Random(4))
    reference = Simulator(
        protocol, CentralDaemon(), rng=random.Random(1), engine="reference"
    ).run(initial, max_steps=120)
    vectorized = Simulator(
        protocol, CentralDaemon(), rng=random.Random(1), engine="vector"
    )
    assert vectorized.engine == "vector"
    execution = vectorized.run(initial, max_steps=120)
    assert vectorized.last_run_backend == "vector"
    assert list(execution.configurations) == list(reference.configurations)


# --------------------------------------------------------------------- #
# Vectorized privilege fast path of spec_ME
# --------------------------------------------------------------------- #
@pytest.mark.parametrize(
    "factory", [lambda: SSME(ring_graph(13)), lambda: DijkstraTokenRing(ring_graph(13))]
, ids=["ssme", "dijkstra"])
def test_privileged_count_array_matches_python(factory):
    protocol = factory()
    engine = VectorEngine(protocol)
    spec = MutualExclusionSpec(protocol)
    for seed in range(8):
        configuration = protocol.random_configuration(random.Random(seed))
        states = engine.encode_initial(configuration)
        view = engine._view(states) if hasattr(engine, "_view") else None
        if view is None:
            from repro.core import ArrayStateView

            view = ArrayStateView(engine._index, states, engine._codec)
        expected = len(protocol.privileged_vertices(configuration))
        assert protocol.privileged_count_array(view) == expected
        assert spec.is_safe(view, protocol) == spec.is_safe(configuration, protocol)
