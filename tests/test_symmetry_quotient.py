"""Property-based soundness of the symmetry quotient (satellite of the
vectorized-checker PR).

Three layers of guarantees, each pinned against the unreduced checker:

* the canonicalization itself — idempotent, orbit-minimal, orbit-invariant,
  and the array path (:meth:`SymmetryReducer.canonicalize_index_matrix`)
  agrees with the pure-Python :meth:`SymmetryReducer.canonical_key`;
* the quotient game — identical ``exact_worst_case`` / ``stabilizes`` /
  per-configuration values to the full product on rings, for all three
  daemon classes;
* the certificates — divergence lassos concretized out of the quotient
  still replay transition-by-transition on concrete configurations.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.vector import numpy_available
from repro.exceptions import VerificationError
from repro.graphs import ring_graph
from repro.mutex import SSME, MutualExclusionSpec
from repro.unison import AsynchronousUnison, AsynchronousUnisonSpec
from repro.verify import StateSpace, verify_stabilization
from repro.verify.symmetry import SymmetryReducer, ring_automorphisms


def unison_instance(n: int, alpha: int = 1, K: int = 3):
    """A small symmetric instance (parameters below the paper's validity
    threshold on purpose — the quotient must be exact either way)."""
    protocol = AsynchronousUnison(
        ring_graph(n), alpha=alpha, K=K, validate_parameters=False
    )
    return protocol, AsynchronousUnisonSpec(protocol)


def reducer_for(n: int):
    protocol, specification = unison_instance(n)
    space = StateSpace(protocol)
    reducer = SymmetryReducer.for_instance(protocol, specification, space)
    assert reducer is not None
    return protocol, specification, space, reducer


# --------------------------------------------------------------------- #
# The automorphism group
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("n", [3, 4, 5, 6, 8])
def test_ring_automorphisms_are_the_dihedral_group(n):
    graph = ring_graph(n)
    maps = ring_automorphisms(graph)
    assert maps is not None
    distinct = {tuple(sorted(m.items())) for m in maps}
    assert len(distinct) == 2 * n
    edges = {frozenset(edge) for edge in graph.edges}
    for vertex_map in maps:
        assert sorted(vertex_map) == sorted(vertex_map.values())
        mapped = {frozenset((vertex_map[u], vertex_map[v])) for u, v in graph.edges}
        assert mapped == edges


def test_non_rings_are_rejected():
    from repro.graphs import path_graph, star_graph

    assert ring_automorphisms(path_graph(5)) is None
    assert ring_automorphisms(star_graph(4)) is None


# --------------------------------------------------------------------- #
# Canonicalization properties
# --------------------------------------------------------------------- #
@settings(max_examples=60, deadline=None)
@given(st.integers(3, 7), st.integers(0, 10_000_000))
def test_canonical_key_is_idempotent_and_orbit_minimal(n, raw):
    _, _, space, reducer = reducer_for(n)
    key = raw % space.size
    canonical = reducer.canonical_key(key)
    orbit = reducer.orbit_keys(key)
    assert canonical == min(orbit)
    assert reducer.canonical_key(canonical) == canonical
    # Every orbit member canonicalizes to the same representative, and the
    # orbit size divides the group order (orbit-stabilizer).
    assert all(reducer.canonical_key(member) == canonical for member in orbit)
    assert reducer.group_size % len(orbit) == 0


@settings(max_examples=40, deadline=None)
@given(st.integers(3, 6), st.integers(0, 10_000), st.integers(1, 30))
def test_canonicalization_commutes_with_rotation(n, seed, extra):
    """g·γ and γ share a canonical key for every automorphism g."""
    protocol, _, space, reducer = reducer_for(n)
    rng = random.Random(seed)
    gamma = protocol.random_configuration(rng)
    maps = ring_automorphisms(protocol.graph)
    vertex_map = maps[extra % len(maps)]
    rotated = protocol.configuration(
        {vertex_map[v]: gamma[v] for v in protocol.graph.vertices}
    )
    assert reducer.canonical_key(space.encode(rotated)) == reducer.canonical_key(
        space.encode(gamma)
    )


@settings(max_examples=25, deadline=None)
@given(st.integers(3, 6), st.integers(0, 10_000))
def test_array_canonicalization_matches_python(n, seed):
    if not numpy_available():
        pytest.skip("array path requires NumPy")
    from repro.verify.batched import ArrayPacker

    protocol, _, space, reducer = reducer_for(n)
    packer = ArrayPacker(space, protocol.array_codec())
    rng = random.Random(seed)
    keys = [rng.randrange(space.size) for _ in range(32)]
    canonical = packer.python_keys(
        reducer.canonicalize_index_matrix(packer.indices_of_keys(keys), packer)
    )
    assert canonical == reducer.canonical_keys(keys)


# --------------------------------------------------------------------- #
# Quotient game == full game
# --------------------------------------------------------------------- #
@pytest.mark.parametrize(
    "daemon_class,n",
    [
        ("synchronous", 4),
        ("synchronous", 6),
        ("central", 4),
        ("central", 5),
        ("distributed", 4),
    ],
)
def test_quotient_matches_full_exact_values(daemon_class, n):
    protocol, specification = unison_instance(n)
    full = verify_stabilization(protocol, specification, daemon_class)
    quotient = verify_stabilization(
        protocol, specification, daemon_class, symmetry=True
    )
    assert quotient.stabilizes == full.stabilizes
    assert quotient.exact_worst_case == full.exact_worst_case
    # Quotient counts are per-orbit: strictly fewer states than the full
    # product whenever the group is non-trivial.
    assert quotient.state_count < full.state_count
    rng = random.Random(n)
    maps = ring_automorphisms(protocol.graph)
    for _ in range(10):
        gamma = protocol.random_configuration(rng)
        expected = full.value_of(gamma)
        assert quotient.value_of(gamma) == expected
        # and the value is constant on the whole orbit
        vertex_map = rng.choice(maps)
        rotated = protocol.configuration(
            {vertex_map[v]: gamma[v] for v in protocol.graph.vertices}
        )
        assert quotient.value_of(rotated) == expected


def test_quotient_agrees_across_engines():
    if not numpy_available():
        pytest.skip("engine comparison requires NumPy")
    protocol, specification = unison_instance(4, alpha=2, K=8)
    results = {
        engine: verify_stabilization(
            protocol, specification, "synchronous", symmetry=True, engine=engine
        )
        for engine in ("dict", "batched")
    }
    assert results["dict"].state_count == results["batched"].state_count
    assert results["dict"].exact_worst_case == results["batched"].exact_worst_case
    assert (
        results["dict"].legitimate_count == results["batched"].legitimate_count
    )


# --------------------------------------------------------------------- #
# Concretized certificates
# --------------------------------------------------------------------- #
def replay_lasso(counterexample, protocol):
    configs = list(counterexample.stem) + list(counterexample.cycle)
    selections = list(counterexample.stem_selections) + list(
        counterexample.cycle_selections
    )
    sequence = configs + [counterexample.cycle[0]]
    for i, selection in enumerate(selections):
        if not selection:
            assert sequence[i] == sequence[i + 1]
            continue
        successor, _ = protocol.apply(sequence[i], selection)
        assert successor == sequence[i + 1], f"replay mismatch at step {i}"


@pytest.mark.parametrize("engine", ["dict", "batched"])
def test_quotient_lassos_replay_concretely(engine):
    if engine == "batched" and not numpy_available():
        pytest.skip("batched engine requires NumPy")
    # alpha = 1 < hole - 2: genuinely diverging under the distributed
    # daemon, so the quotient must hand back a concrete replayable lasso.
    protocol, specification = unison_instance(5)
    result = verify_stabilization(
        protocol, specification, "distributed", symmetry=True, engine=engine
    )
    assert not result.stabilizes
    assert result.counterexample is not None
    replay_lasso(result.counterexample, protocol)
    full = verify_stabilization(protocol, specification, "distributed")
    assert result.exact_worst_case == full.exact_worst_case


# --------------------------------------------------------------------- #
# Soundness gates
# --------------------------------------------------------------------- #
def test_asymmetric_instances_refuse_the_quotient():
    # SSME's privileged values are spaced by vertex identity: quotienting
    # it would be unsound, and the capability flag says so.
    protocol = SSME(ring_graph(4))
    specification = MutualExclusionSpec(protocol)
    assert SymmetryReducer.for_instance(protocol, specification) is None
    with pytest.raises(VerificationError, match="symmetry"):
        verify_stabilization(
            protocol, specification, "synchronous", symmetry=True
        )
