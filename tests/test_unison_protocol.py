"""Unit tests for the asynchronous unison protocol (Boulinier et al.)."""

from __future__ import annotations

import random

import pytest

from repro.core import Simulator, SynchronousDaemon, synchronous_execution
from repro.exceptions import ProtocolError
from repro.graphs import complete_graph, path_graph, ring_graph, star_graph
from repro.unison import AsynchronousUnison, AsynchronousUnisonSpec, default_unison_parameters


class TestConstruction:
    def test_default_parameters(self):
        protocol = AsynchronousUnison(ring_graph(6))
        assert protocol.alpha == 6
        assert protocol.K == 7
        assert protocol.clock.alpha == 6

    def test_explicit_parameters(self):
        protocol = AsynchronousUnison(path_graph(4), alpha=3, K=10)
        assert protocol.alpha == 3
        assert protocol.K == 10

    def test_alpha_too_small_rejected(self):
        # hole(ring_6) = 6 so alpha must be >= 4.
        with pytest.raises(ProtocolError):
            AsynchronousUnison(ring_graph(6), alpha=2, K=10)

    def test_K_too_small_rejected(self):
        with pytest.raises(ProtocolError):
            AsynchronousUnison(ring_graph(6), alpha=6, K=3)

    def test_validation_can_be_disabled(self):
        protocol = AsynchronousUnison(ring_graph(6), alpha=2, K=3, validate_parameters=False)
        assert protocol.alpha == 2

    def test_default_unison_parameters(self):
        alpha, K = default_unison_parameters(ring_graph(6))
        assert alpha == 6 and K == 7
        alpha_exact, K_exact = default_unison_parameters(path_graph(5), exact=True)
        assert alpha_exact == 1  # hole(tree) = 2 -> alpha >= max(1, 0)
        assert K_exact >= 2


class TestStates:
    def test_random_state_in_domain(self, rng):
        protocol = AsynchronousUnison(ring_graph(5))
        for _ in range(50):
            value = protocol.random_state(0, rng)
            assert protocol.clock.contains(value)

    def test_validate_state(self):
        protocol = AsynchronousUnison(ring_graph(5))
        with pytest.raises(ProtocolError):
            protocol.validate_state(0, protocol.K)
        with pytest.raises(ProtocolError):
            protocol.validate_state(0, "zero")

    def test_default_configuration_is_legitimate(self):
        protocol = AsynchronousUnison(ring_graph(5))
        assert protocol.is_legitimate(protocol.default_configuration())

    def test_legitimate_configuration_helper(self):
        protocol = AsynchronousUnison(ring_graph(5))
        gamma = protocol.legitimate_configuration(3)
        assert protocol.is_legitimate(gamma)
        with pytest.raises(ProtocolError):
            protocol.legitimate_configuration(-1)


class TestRules:
    def test_at_most_one_rule_enabled_per_vertex(self, rng):
        protocol = AsynchronousUnison(ring_graph(6))
        for _ in range(30):
            gamma = protocol.random_configuration(rng)
            for vertex in protocol.graph.vertices:
                assert len(protocol.enabled_rules(gamma, vertex)) <= 1

    def test_normal_action_increments_local_minimum(self):
        protocol = AsynchronousUnison(path_graph(3), alpha=3, K=6, validate_parameters=False)
        gamma = protocol.configuration({0: 2, 1: 2, 2: 3})
        # Vertex 2 is ahead of its neighbour, so it must wait; 0 and 1 may move.
        assert protocol.is_enabled(gamma, 0)
        assert protocol.is_enabled(gamma, 1)
        assert not protocol.is_enabled(gamma, 2)
        gamma2, records = protocol.apply(gamma, [0, 1])
        assert gamma2[0] == 3 and gamma2[1] == 3
        assert all(record.rule_name == "NA" for record in records)

    def test_reset_action_on_inconsistency(self):
        protocol = AsynchronousUnison(path_graph(2), alpha=2, K=5, validate_parameters=False)
        gamma = protocol.configuration({0: 1, 1: 4})
        # Drift 2 > 1: both vertices see an inconsistency; both hold
        # non-initial values, so both must reset.
        assert protocol.enabled_rules(gamma, 0)[0].name == "RA"
        assert protocol.enabled_rules(gamma, 1)[0].name == "RA"
        gamma2, _ = protocol.apply(gamma, [0, 1])
        assert gamma2[0] == -2 and gamma2[1] == -2

    def test_converge_action_climbs_the_tail(self):
        protocol = AsynchronousUnison(path_graph(2), alpha=3, K=5, validate_parameters=False)
        gamma = protocol.configuration({0: -3, 1: -1})
        # Vertex 0 holds the smallest initial value: only it may climb.
        assert protocol.enabled_rules(gamma, 0)[0].name == "CA"
        assert not protocol.is_enabled(gamma, 1)

    def test_zero_vertex_waits_for_negative_neighbors(self):
        protocol = AsynchronousUnison(path_graph(2), alpha=3, K=5, validate_parameters=False)
        gamma = protocol.configuration({0: 0, 1: -2})
        # Vertex 0 is at 0 (initial *and* correct) with a tail neighbour: it
        # can neither reset (it holds an initial value) nor converge (0 is
        # not a strict initial value) nor take a normal step (neighbour not
        # correct): it simply waits.
        assert not protocol.is_enabled(gamma, 0)
        assert protocol.is_enabled(gamma, 1)


class TestLegitimacy:
    def test_is_legitimate_requires_correct_values(self):
        protocol = AsynchronousUnison(ring_graph(4))
        gamma = protocol.configuration({0: -1, 1: 0, 2: 0, 3: 0})
        assert not protocol.is_legitimate(gamma)

    def test_is_legitimate_requires_small_drift(self):
        protocol = AsynchronousUnison(ring_graph(4))
        gamma = protocol.configuration({0: 0, 1: 2, 2: 0, 3: 0})
        assert not protocol.is_legitimate(gamma)

    def test_is_locally_correct(self):
        protocol = AsynchronousUnison(path_graph(3))
        gamma = protocol.configuration({0: 1, 1: 2, 2: 2})
        assert protocol.is_locally_correct(gamma, 1)
        gamma_bad = protocol.configuration({0: 1, 1: 3, 2: 2})
        assert not protocol.is_locally_correct(gamma_bad, 0)


class TestConvergence:
    @pytest.mark.parametrize(
        "graph",
        [ring_graph(5), path_graph(6), star_graph(5), complete_graph(4)],
        ids=["ring5", "path6", "star5", "complete4"],
    )
    def test_synchronous_convergence_from_random_configurations(self, graph, rng):
        protocol = AsynchronousUnison(graph)
        spec = AsynchronousUnisonSpec(protocol)
        horizon = 4 * (protocol.alpha + protocol.K)
        for _ in range(5):
            gamma = protocol.random_configuration(rng)
            execution = synchronous_execution(protocol, gamma, horizon)
            assert protocol.is_legitimate(execution.final)
            # Closure: once legitimate, the execution stays legitimate.
            first_legit = next(
                i
                for i in range(execution.steps + 1)
                if protocol.is_legitimate(execution.configuration(i))
            )
            for i in range(first_legit, execution.steps + 1):
                assert protocol.is_legitimate(execution.configuration(i))
            # Liveness: every clock keeps being incremented after convergence.
            assert spec.check_liveness(execution, protocol, first_legit)

    def test_closure_of_legitimate_configurations_under_any_selection(self, rng):
        protocol = AsynchronousUnison(ring_graph(5))
        gamma = protocol.legitimate_configuration(2)
        for _ in range(30):
            enabled = protocol.enabled_vertices(gamma)
            assert enabled
            selection = [v for v in enabled if rng.random() < 0.6] or [next(iter(enabled))]
            gamma, _ = protocol.apply(gamma, selection)
            assert protocol.is_legitimate(gamma)
