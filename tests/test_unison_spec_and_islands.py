"""Unit tests for spec_AU and the island decomposition (Definitions 5-6)."""

from __future__ import annotations

import random

import pytest

from repro.core import synchronous_execution
from repro.exceptions import SpecificationError
from repro.graphs import path_graph, ring_graph
from repro.mutex import SSME
from repro.unison import (
    AsynchronousUnison,
    AsynchronousUnisonSpec,
    decompose_islands,
    island_of,
)


class TestSpecAU:
    def test_requires_unison_protocol(self):
        from repro.mutex import DijkstraTokenRing

        with pytest.raises(SpecificationError):
            AsynchronousUnisonSpec(DijkstraTokenRing.on_ring(4))

    def test_safety_is_gamma1_membership(self):
        protocol = AsynchronousUnison(ring_graph(4))
        spec = AsynchronousUnisonSpec(protocol)
        assert spec.is_safe(protocol.legitimate_configuration(1), protocol)
        assert not spec.is_safe(protocol.configuration({0: 0, 1: 3, 2: 0, 3: 0}), protocol)

    def test_liveness_requires_every_vertex_to_increment(self):
        protocol = AsynchronousUnison(ring_graph(4))
        spec = AsynchronousUnisonSpec(protocol)
        execution = synchronous_execution(protocol, protocol.legitimate_configuration(0), 5)
        assert spec.check_liveness(execution, protocol, 0)
        # An empty window has no increments at all.
        empty = synchronous_execution(protocol, protocol.legitimate_configuration(0), 0)
        assert not spec.check_liveness(empty, protocol, 0)

    def test_drift_bound_violations(self):
        protocol = AsynchronousUnison(ring_graph(4))
        spec = AsynchronousUnisonSpec(protocol)
        assert spec.drift_bound_violations(protocol.legitimate_configuration(0)) == 0
        bad = protocol.configuration({0: 0, 1: 3, 2: 3, 3: 0})
        assert spec.drift_bound_violations(bad) == 2


class TestIslands:
    def test_legitimate_configuration_has_no_island(self):
        protocol = AsynchronousUnison(ring_graph(5))
        islands = decompose_islands(protocol, protocol.legitimate_configuration(0))
        assert islands == []

    def test_island_detection_on_path(self):
        # Path 0-1-2-3-4 with a consistent left half and an inconsistent
        # right half: the left half forms an island.
        protocol = AsynchronousUnison(path_graph(5), alpha=5, K=20, validate_parameters=False)
        gamma = protocol.configuration({0: 5, 1: 5, 2: 6, 3: 12, 4: -2})
        islands = decompose_islands(protocol, gamma)
        by_vertices = {island.vertices: island for island in islands}
        assert frozenset({0, 1, 2}) in by_vertices
        left = by_vertices[frozenset({0, 1, 2})]
        assert not left.is_zero_island
        assert left.border == frozenset({2})
        assert left.depth == 2
        # Vertex 3 holds a correct value but is consistent with neither
        # neighbour: it is an island on its own.
        assert frozenset({3}) in by_vertices
        assert 3 in by_vertices[frozenset({3})]

    def test_zero_island_flag(self):
        protocol = AsynchronousUnison(path_graph(3), alpha=3, K=10, validate_parameters=False)
        gamma = protocol.configuration({0: 0, 1: 1, 2: 7})
        islands = decompose_islands(protocol, gamma)
        zero_islands = [island for island in islands if island.is_zero_island]
        assert len(zero_islands) == 1
        assert zero_islands[0].vertices == frozenset({0, 1})

    def test_island_of(self):
        protocol = AsynchronousUnison(path_graph(3), alpha=3, K=10, validate_parameters=False)
        gamma = protocol.configuration({0: 0, 1: 1, 2: 7})
        assert island_of(protocol, gamma, 0) is not None
        assert island_of(protocol, gamma, 0).is_zero_island
        # Initial values belong to no island.
        gamma2 = protocol.configuration({0: -1, 1: 1, 2: 7})
        assert island_of(protocol, gamma2, 0) is None

    def test_island_repr_and_len(self):
        protocol = AsynchronousUnison(path_graph(3), alpha=3, K=10, validate_parameters=False)
        gamma = protocol.configuration({0: 0, 1: 1, 2: 7})
        island = island_of(protocol, gamma, 0)
        assert len(island) == 2
        assert "zero" in repr(island)


class TestIslandLemmas:
    def test_lemma2_privileged_vertex_never_in_zero_island(self, rng):
        """Executable Lemma 2: in the first diam(g) synchronous steps, a
        vertex that is privileged at step i never belonged to a zero-island
        earlier in the prefix."""
        protocol = SSME(ring_graph(8))
        diam = protocol.diam
        for _ in range(20):
            gamma = protocol.random_configuration(rng)
            execution = synchronous_execution(protocol, gamma, diam)
            for i in range(diam):
                config_i = execution.configuration(i)
                for vertex in protocol.graph.vertices:
                    if protocol.is_privileged(config_i, vertex):
                        for j in range(i + 1):
                            island = island_of(protocol, execution.configuration(j), vertex)
                            assert island is None or not island.is_zero_island
