"""Unit tests for the array-state (vector) engine backend.

The engine equivalence suite pins whole traces; these tests pin the
building blocks directly — CSR indexing, codecs, guard-by-guard kernel
equality against the Python guards, the live array view, the capability
API (including a width-2 tuple-state protocol), and the codec-decline
fallback.  Everything here needs real NumPy and is skipped without it;
the no-NumPy degradation path is covered in ``test_engine_equivalence``.
"""

from __future__ import annotations

import random

import pytest

np = pytest.importorskip("numpy")

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ArrayKernel,
    ArrayStateView,
    CentralDaemon,
    Configuration,
    GraphIndex,
    IntCodec,
    IntTupleCodec,
    Protocol,
    Rule,
    Simulator,
    SynchronousDaemon,
    VectorEngine,
    protocol_supports_vector,
)
from repro.exceptions import SimulationError
from repro.baselines import BfsSpanningTree, MaximalMatching
from repro.graphs import random_connected_graph, ring_graph, star_graph
from repro.mutex import SSME, DijkstraTokenRing
from repro.unison import AsynchronousUnison


class TestGraphIndex:
    def test_csr_matches_adjacency(self):
        graph = random_connected_graph(9, 0.4, random.Random(1))
        index = GraphIndex(graph)
        assert set(index.vertices) == set(graph.vertices)
        for i, v in enumerate(index.vertices):
            row = index.indices[index.indptr[i] : index.indptr[i + 1]]
            assert {index.vertices[j] for j in row.tolist()} == set(graph.neighbors(v))
        # edge_src mirrors the row ownership of every adjacency entry.
        for e in range(int(index.indices.size)):
            src = int(index.edge_src[e])
            assert index.indptr[src] <= e < index.indptr[src + 1]

    def test_edge_reductions_match_python(self):
        graph = star_graph(5)
        index = GraphIndex(graph)
        rng = random.Random(3)
        flags = np.array([rng.random() < 0.5 for _ in range(int(index.indices.size))])
        any_vec = index.any_over_edges(flags)
        all_vec = index.all_over_edges(flags)
        for i in range(index.n):
            segment = flags[index.indptr[i] : index.indptr[i + 1]].tolist()
            assert bool(any_vec[i]) == any(segment)
            assert bool(all_vec[i]) == all(segment)


class TestCodecs:
    def test_int_codec_round_trip(self):
        codec = IntCodec()
        order = ("a", "b", "c")
        states = {"a": -7, "b": 0, "c": 123}
        array = codec.encode(states, order)
        assert array.shape == (3, 1)
        decoded = codec.decode(array)
        assert decoded == [-7, 0, 123]
        assert all(type(value) is int for value in decoded)

    def test_int_codec_rejects_non_ints(self):
        codec = IntCodec()
        with pytest.raises(TypeError):
            codec.encode({"a": 1.5}, ("a",))
        with pytest.raises(TypeError):
            codec.encode({"a": True}, ("a",))
        with pytest.raises(TypeError):
            codec.encode({"a": (1, 2)}, ("a",))

    def test_tuple_codec_round_trip(self):
        codec = IntTupleCodec(2)
        order = (0, 1)
        states = {0: (1, -2), 1: (0, 9)}
        array = codec.encode(states, order)
        assert array.shape == (2, 2)
        decoded = codec.decode(array)
        assert decoded == [(1, -2), (0, 9)]
        assert all(type(value) is int for row in decoded for value in row)

    def test_tuple_codec_rejects_wrong_width(self):
        codec = IntTupleCodec(2)
        with pytest.raises(TypeError):
            codec.encode({0: (1, 2, 3)}, (0,))
        with pytest.raises(SimulationError):
            IntTupleCodec(0)


def _expected_rule_id(protocol, configuration, vertex):
    """First enabled rule position via the stock Python chain (-1 if none)."""
    _view, enabled = protocol.evaluate(configuration, vertex)
    if not enabled:
        return -1
    rules = list(protocol.rules())
    return rules.index(enabled[0])


@pytest.mark.parametrize(
    "factory",
    [
        lambda g: AsynchronousUnison(g, validate_parameters=False),
        SSME,
    ],
    ids=["unison", "ssme"],
)
@pytest.mark.parametrize("graph_seed", [0, 4])
@pytest.mark.parametrize("state_seed", [1, 7, 42])
def test_unison_kernel_guards_match_python(factory, graph_seed, state_seed):
    graph = random_connected_graph(8, 0.35, random.Random(graph_seed))
    protocol = factory(graph)
    kernel = protocol.array_kernel()
    codec = protocol.array_codec()
    index = GraphIndex(graph)
    kernel.prepare(index)
    configuration = protocol.random_configuration(random.Random(state_seed))
    states = codec.encode(configuration, index.vertices)
    rule_ids = kernel.enabled_rules(states, index)
    for i, vertex in enumerate(index.vertices):
        assert int(rule_ids[i]) == _expected_rule_id(protocol, configuration, vertex), vertex
    # Fire every enabled vertex and compare against the rule actions.
    enabled = np.flatnonzero(rule_ids != -1)
    if enabled.size:
        new_rows = kernel.fire(states, enabled, rule_ids[enabled], index)
        rules = list(protocol.rules())
        for row, position in enumerate(enabled.tolist()):
            vertex = index.vertices[position]
            view, enabled_rules = protocol.evaluate(configuration, vertex)
            assert codec.decode(new_rows[row : row + 1])[0] == enabled_rules[0].apply(view)


@pytest.mark.parametrize("state_seed", [0, 5, 19])
def test_dijkstra_kernel_guards_match_python(state_seed):
    protocol = DijkstraTokenRing(ring_graph(7))
    kernel = protocol.array_kernel()
    codec = protocol.array_codec()
    index = GraphIndex(protocol.graph)
    kernel.prepare(index)
    configuration = protocol.random_configuration(random.Random(state_seed))
    states = codec.encode(configuration, index.vertices)
    rule_ids = kernel.enabled_rules(states, index)
    for i, vertex in enumerate(index.vertices):
        assert int(rule_ids[i]) == _expected_rule_id(protocol, configuration, vertex)
    enabled = np.flatnonzero(rule_ids != -1)
    new_rows = kernel.fire(states, enabled, rule_ids[enabled], index)
    for row, position in enumerate(enabled.tolist()):
        vertex = index.vertices[position]
        view, enabled_rules = protocol.evaluate(configuration, vertex)
        assert codec.decode(new_rows[row : row + 1])[0] == enabled_rules[0].apply(view)


@pytest.mark.parametrize(
    "factory",
    [BfsSpanningTree, MaximalMatching],
    ids=["bfs", "matching"],
)
@pytest.mark.parametrize("graph_seed", [0, 4, 9])
@pytest.mark.parametrize("state_seed", [1, 7, 42])
def test_baseline_kernel_guards_match_python(factory, graph_seed, state_seed):
    graph = random_connected_graph(8, 0.35, random.Random(graph_seed))
    protocol = factory(graph)
    assert protocol_supports_vector(protocol)
    kernel = protocol.array_kernel()
    codec = protocol.array_codec()
    index = GraphIndex(graph)
    kernel.prepare(index)
    configuration = protocol.random_configuration(random.Random(state_seed))
    states = codec.encode(configuration, index.vertices)
    rule_ids = kernel.enabled_rules(states, index)
    for i, vertex in enumerate(index.vertices):
        assert int(rule_ids[i]) == _expected_rule_id(protocol, configuration, vertex), vertex
    enabled = np.flatnonzero(rule_ids != -1)
    if enabled.size:
        new_rows = kernel.fire(states, enabled, rule_ids[enabled], index)
        for row, position in enumerate(enabled.tolist()):
            vertex = index.vertices[position]
            view, enabled_rules = protocol.evaluate(configuration, vertex)
            assert codec.decode(new_rows[row : row + 1])[0] == enabled_rules[0].apply(view)


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(2, 30),
    graph_p=st.floats(0.0, 0.6),
    graph_seed=st.integers(0, 1000),
    state_seed=st.integers(0, 10_000),
)
def test_unison_kernel_guards_match_python_hypothesis(n, graph_p, graph_seed, state_seed):
    graph = random_connected_graph(n, graph_p, random.Random(graph_seed))
    protocol = AsynchronousUnison(graph, validate_parameters=False)
    kernel = protocol.array_kernel()
    codec = protocol.array_codec()
    index = GraphIndex(graph)
    kernel.prepare(index)
    configuration = protocol.random_configuration(random.Random(state_seed))
    states = codec.encode(configuration, index.vertices)
    rule_ids = kernel.enabled_rules(states, index)
    for i, vertex in enumerate(index.vertices):
        assert int(rule_ids[i]) == _expected_rule_id(protocol, configuration, vertex)


class TestArrayStateView:
    def _view(self):
        protocol = AsynchronousUnison(ring_graph(5), validate_parameters=False)
        index = GraphIndex(protocol.graph)
        codec = protocol.array_codec()
        configuration = protocol.random_configuration(random.Random(2))
        states = codec.encode(configuration, index.vertices)
        return ArrayStateView(index, states, codec), configuration, states

    def test_mapping_protocol_and_decoding(self):
        view, configuration, _states = self._view()
        assert len(view) == 5
        assert set(view) == set(configuration)
        assert dict(view) == dict(configuration)
        assert view == configuration
        for vertex in view:
            assert type(view[vertex]) is int
        with pytest.raises(SimulationError):
            view["missing"]
        with pytest.raises(TypeError):
            hash(view)

    def test_view_is_live_and_snapshot_pins(self):
        view, _configuration, states = self._view()
        vertex = next(iter(view))
        before = view[vertex]
        pinned = view.snapshot()
        states[0, 0] = before + 1
        assert view[vertex] == before + 1
        assert pinned[vertex] == before
        assert isinstance(pinned, Configuration)

    def test_updated_and_restrict(self):
        view, configuration, _states = self._view()
        vertex = next(iter(view))
        updated = view.updated({vertex: 3})
        assert updated[vertex] == 3
        assert view.restrict([vertex])[vertex] == view[vertex]
        with pytest.raises(SimulationError):
            view.updated({"missing": 1})


# --------------------------------------------------------------------- #
# A width-2 tuple-state protocol exercising IntTupleCodec end to end
# --------------------------------------------------------------------- #
class TwoCounterProtocol(Protocol):
    """Toy protocol with state ``(a, b)``: ``sync`` raises ``a`` toward
    ``b``; ``catch`` raises ``b`` while every neighbour's ``b`` exceeds
    ``a``.  Meaningless as a distributed algorithm — it exists to pin the
    width-2 codec/kernel path against the Python rule chain."""

    name = "two-counter"

    def rules(self):
        def sync_guard(view):
            return view.state[0] < view.state[1]

        def sync_action(view):
            return (view.state[0] + 1, view.state[1])

        def catch_guard(view):
            a, b = view.state
            return a == b and all(
                state[1] > a for state in view.neighbor_states.values()
            )

        def catch_action(view):
            return (view.state[0], view.state[1] + 1)

        return [Rule("sync", sync_guard, sync_action), Rule("catch", catch_guard, catch_action)]

    def random_state(self, vertex, rng):
        return (rng.randrange(4), rng.randrange(4))

    def array_codec(self):
        return IntTupleCodec(2)

    def array_kernel(self):
        return TwoCounterKernel()


class TwoCounterKernel(ArrayKernel):
    rule_names = ("sync", "catch")

    def enabled_rules(self, states, index):
        a = states[:, 0]
        b = states[:, 1]
        sync = a < b
        edge_ok = b[index.indices] > a[index.edge_src]
        catch = (a == b) & index.all_over_edges(edge_ok)
        rule_ids = np.full(index.n, -1, dtype=np.int64)
        rule_ids[catch] = 1
        rule_ids[sync] = 0
        return rule_ids

    def fire(self, states, selected, rule_ids, index):
        rows = states[selected].copy()
        sync_rows = rule_ids == 0
        rows[sync_rows, 0] += 1
        rows[~sync_rows, 1] += 1
        return rows


class TestTupleStateProtocol:
    def test_vector_supported_and_equivalent(self):
        graph = random_connected_graph(7, 0.4, random.Random(6))
        protocol = TwoCounterProtocol(graph)
        assert protocol_supports_vector(protocol)
        initial = protocol.random_configuration(random.Random(9))
        runs = {}
        for engine in ("reference", "vector"):
            for trace in ("full", "light"):
                simulator = Simulator(
                    protocol,
                    SynchronousDaemon(),
                    rng=random.Random(1),
                    engine=engine,
                    trace=trace,
                )
                if engine == "vector":
                    assert simulator.engine == "vector"
                runs[(engine, trace)] = simulator.run(initial, max_steps=30)
        reference = runs[("reference", "full")]
        for execution in runs.values():
            assert execution.steps == reference.steps
            assert list(execution.configurations) == list(reference.configurations)
        final = reference.final
        assert all(type(state) is tuple for state in final.as_dict().values())

    def test_records_decode_tuples(self):
        protocol = TwoCounterProtocol(ring_graph(4))
        initial = protocol.configuration({v: (0, 1) for v in protocol.graph.vertices})
        simulator = Simulator(protocol, SynchronousDaemon(), engine="vector")
        execution = simulator.run(initial, max_steps=1)
        records = execution.activation_records(0)
        assert {record.vertex for record in records} == set(protocol.graph.vertices)
        for record in records:
            assert record.rule_name == "sync"
            assert record.old_state == (0, 1)
            assert record.new_state == (1, 1)
            assert type(record.new_state) is tuple


class TestBackendSelection:
    def test_codec_decline_falls_back_per_run(self):
        """States outside the codec's layout run on the dict paths."""
        protocol = AsynchronousUnison(ring_graph(6), validate_parameters=False)
        # A float clock value is fine for the Python guards but cannot be
        # encoded losslessly; the engine must decline and fall back.
        states = {v: 1 for v in protocol.graph.vertices}
        states[0] = 1.5
        initial = Configuration(states)
        reference = Simulator(
            protocol, SynchronousDaemon(), rng=random.Random(2), engine="reference"
        ).run(initial, max_steps=10)
        simulator = Simulator(
            protocol, SynchronousDaemon(), rng=random.Random(2), engine="vector"
        )
        assert simulator.engine == "vector"
        execution = simulator.run(initial, max_steps=10)
        assert simulator.last_run_backend == "dict"
        assert list(execution.configurations) == list(reference.configurations)
        # An encodable initial on the same simulator goes vectorized again.
        clean = protocol.random_configuration(random.Random(5))
        simulator.run(clean, max_steps=5)
        assert simulator.last_run_backend == "vector"

    def test_overridden_choose_rule_disables_vector(self):
        class PickyUnison(AsynchronousUnison):
            def choose_rule(self, enabled_rules, view):
                return enabled_rules[-1]

        protocol = PickyUnison(ring_graph(5), validate_parameters=False)
        assert not protocol_supports_vector(protocol)
        simulator = Simulator(protocol, SynchronousDaemon(), engine="vector")
        assert simulator.engine == "incremental"

    def test_rule_name_mismatch_rejected(self):
        class LyingKernelProtocol(TwoCounterProtocol):
            def array_kernel(self):
                kernel = TwoCounterKernel()
                kernel.rule_names = ("sync", "wrong")
                return kernel

        protocol = LyingKernelProtocol(ring_graph(4))
        with pytest.raises(SimulationError):
            VectorEngine(protocol)

    def test_auto_selection_is_daemon_density_aware(self):
        protocol = AsynchronousUnison(ring_graph(8), validate_parameters=False)
        # Synchronous daemons take the batched superstep loop under auto.
        assert Simulator(protocol, SynchronousDaemon()).engine == "vector-superstep"
        assert Simulator(protocol, CentralDaemon()).engine == "incremental"
        # Protocols without the capability resolve to incremental even for
        # dense daemons.  (Every shipped protocol now declares the
        # capability, so strip it off a subclass.)
        class NoKernelMatching(MaximalMatching):
            def array_codec(self):
                return None

            def array_kernel(self):
                return None

        matching = NoKernelMatching(ring_graph(8))
        assert Simulator(matching, SynchronousDaemon()).engine == "incremental"
        # The baselines themselves now take the superstep loop under auto.
        assert (
            Simulator(MaximalMatching(ring_graph(8)), SynchronousDaemon()).engine
            == "vector-superstep"
        )

    def test_auto_selection_routes_mid_density_daemons_at_scale(self):
        """p >= 0.2 daemons take the array backend once n is large enough
        for the vectorized sparse refresh to win (prefers_array_backend)."""
        from repro.core import DistributedDaemon

        small = AsynchronousUnison(ring_graph(16), validate_parameters=False)
        assert Simulator(small, DistributedDaemon(0.4)).engine == "incremental"
        big = AsynchronousUnison(ring_graph(512), validate_parameters=False)
        assert Simulator(big, DistributedDaemon(0.4)).engine == "vector"
        # Below the density floor the dirty-set engine keeps the run.
        assert Simulator(big, DistributedDaemon(0.05)).engine == "incremental"
