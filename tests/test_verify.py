"""Tests for the exact model checker (:mod:`repro.verify`).

Covers the finite-state capability, the mixed-radix packing, the
daemon-class expansion, the game solver's fixpoints, and the headline
certifications: the exact synchronous worst case of SSME on rings equals
the Theorem 2 bound and dominates the sampled measurement on the same
instances, the certified legitimate attractor of the unison equals Γ₁,
and deliberately broken protocol variants fail verification with a
safety-violating lasso counterexample.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.core import (
    CentralDaemon,
    Simulator,
    SynchronousDaemon,
    worst_case_stabilization,
)
from repro.core.protocol import Protocol
from repro.core.rules import Rule
from repro.core.specification import Specification
from repro.exceptions import VerificationError
from repro.graphs import path_graph, ring_graph
from repro.lowerbound import farthest_vertex_pairs, spliced_violation_configurations
from repro.mutex import SSME, DijkstraTokenRing, MutualExclusionSpec
from repro.mutex.variants import ParametricClockMutex
from repro.unison import AsynchronousUnison, AsynchronousUnisonSpec
from repro.verify import (
    StateSpace,
    TransitionSystem,
    daemon_class_selections,
    exact_speculation_gap,
    exact_worst_case_stabilization,
    solve,
    verify_stabilization,
)


class CountdownProtocol(Protocol):
    """Test helper: every positive counter decrements; all-zero is terminal.

    Closed-form game values make the solver checkable: under the
    synchronous class the worst case from a configuration is its maximum
    counter, under the central class it is the counter sum.
    """

    name = "countdown"
    actions_preserve_validity = True

    TOP = 3

    def __init__(self, graph):
        super().__init__(graph)
        self._rules = [
            Rule("down", lambda view: view.state > 0, lambda view: view.state - 1)
        ]

    def rules(self):
        return self._rules

    def random_state(self, vertex, rng):
        return rng.randrange(self.TOP + 1)

    def vertex_state_space(self, vertex):
        return range(self.TOP + 1)


class AllZeroSpec(Specification):
    """Safety: every counter is zero (so the attractor is the terminal)."""

    name = "all-zero"

    def is_safe(self, configuration, protocol):
        return all(configuration[v] == 0 for v in protocol.graph.vertices)

    def check_liveness(self, execution, protocol, start=0):
        return True


class NeverSafeSpec(Specification):
    """Safety that never holds — everything must diverge."""

    name = "never"

    def is_safe(self, configuration, protocol):
        return False

    def check_liveness(self, execution, protocol, start=0):
        return True


class TestVertexStateSpaceCapability:
    def test_default_is_none(self):
        protocol = SSME(ring_graph(4))
        assert Protocol.vertex_state_space(protocol, 0) is None

    def test_unison_domain_is_the_clock(self):
        protocol = AsynchronousUnison(ring_graph(4), alpha=2, K=5)
        domain = list(protocol.vertex_state_space(0))
        assert domain == list(range(-2, 5))
        assert domain == list(protocol.clock.state_space())

    def test_ssme_inherits_the_clock_domain(self):
        protocol = SSME(ring_graph(4))
        domain = list(protocol.vertex_state_space(0))
        assert domain[0] == -protocol.alpha
        assert domain[-1] == protocol.K - 1
        assert len(domain) == protocol.alpha + protocol.K

    def test_dijkstra_domain_is_the_counter_range(self):
        protocol = DijkstraTokenRing.on_ring(5)
        assert list(protocol.vertex_state_space(0)) == list(range(protocol.K))

    def test_protocols_without_the_capability_are_rejected(self):
        # Every library protocol now declares the hook (the Section 3
        # baselines included), so the rejection path needs one that
        # explicitly opts back out.
        from repro.baselines import BfsSpanningTree

        class UndeclaredBfs(BfsSpanningTree):
            def vertex_state_space(self, vertex):
                return None

        with pytest.raises(VerificationError, match="vertex_state_space"):
            StateSpace(UndeclaredBfs(path_graph(3)))


class TestStateSpace:
    def test_size_is_the_domain_product(self):
        protocol = DijkstraTokenRing.on_ring(4)  # K = 5
        assert StateSpace(protocol).size == 5**4

    def test_encode_decode_roundtrip(self, rng):
        protocol = SSME(ring_graph(5))
        space = StateSpace(protocol)
        for _ in range(25):
            configuration = protocol.random_configuration(rng)
            key = space.encode(configuration)
            assert 0 <= key < space.size
            assert space.decode(key) == configuration

    def test_keys_enumerate_the_whole_space_bijectively(self):
        protocol = DijkstraTokenRing.on_ring(3)  # 4^3 = 64
        space = StateSpace(protocol)
        configurations = list(space.configurations())
        assert len(configurations) == 64
        assert len({space.encode(c) for c in configurations}) == 64

    def test_enumeration_cap(self):
        protocol = SSME(ring_graph(8))
        space = StateSpace(protocol, max_enumerated=1000)
        assert space.size > 10**15
        with pytest.raises(VerificationError, match="cap"):
            list(space.keys())

    def test_decode_rejects_foreign_keys(self):
        space = StateSpace(DijkstraTokenRing.on_ring(3))
        with pytest.raises(VerificationError):
            space.decode(space.size)
        with pytest.raises(VerificationError):
            space.decode(-1)

    def test_encode_rejects_out_of_domain_states(self):
        protocol = DijkstraTokenRing.on_ring(3)
        space = StateSpace(protocol)
        with pytest.raises(VerificationError, match="outside"):
            space.encode({0: 99, 1: 0, 2: 0})
        with pytest.raises(VerificationError, match="no state"):
            space.encode({0: 0, 1: 0})

    def test_encode_many_matches_encode(self, rng):
        protocol = SSME(ring_graph(4))
        space = StateSpace(protocol)
        configurations = [protocol.random_configuration(rng) for _ in range(12)]
        assert space.encode_many(configurations) == [
            space.encode(c) for c in configurations
        ]

    def test_encode_many_pure_python_fallback(self, rng, monkeypatch):
        import sys

        monkeypatch.setitem(sys.modules, "numpy", None)
        protocol = SSME(ring_graph(4))
        space = StateSpace(protocol)
        configurations = [protocol.random_configuration(rng) for _ in range(5)]
        assert space.encode_many(configurations) == [
            space.encode(c) for c in configurations
        ]


class TestDaemonClassExpansion:
    def test_selection_sets(self):
        enabled = frozenset({0, 1, 2})
        assert daemon_class_selections("synchronous", enabled) == [enabled]
        central = daemon_class_selections("central", enabled)
        assert central == [frozenset({0}), frozenset({1}), frozenset({2})]
        distributed = daemon_class_selections("distributed", enabled)
        assert len(distributed) == 7
        assert set(central) <= set(distributed)
        assert enabled in distributed

    def test_distributed_cap(self):
        enabled = frozenset(range(10))
        with pytest.raises(VerificationError, match="cap"):
            daemon_class_selections("distributed", enabled, max_selections=100)

    def test_unknown_class(self):
        with pytest.raises(VerificationError, match="unknown daemon class"):
            daemon_class_selections("chaotic", frozenset({0}))
        protocol = DijkstraTokenRing.on_ring(3)
        with pytest.raises(VerificationError, match="unknown daemon class"):
            TransitionSystem(protocol, MutualExclusionSpec(protocol), "chaotic")

    def test_synchronous_successor_matches_the_simulator(self, rng):
        protocol = SSME(ring_graph(5))
        configuration = protocol.random_configuration(rng)
        system = TransitionSystem(
            protocol, MutualExclusionSpec(protocol), "synchronous"
        )
        pairs = system.successor_configurations(configuration)
        assert len(pairs) == 1
        step = Simulator(protocol, SynchronousDaemon(), engine="reference").step(
            configuration
        )
        assert pairs[0][0] == step.enabled
        assert pairs[0][1] == step.configuration

    def test_central_successors_cover_every_enabled_vertex(self, rng):
        protocol = DijkstraTokenRing.on_ring(4)
        configuration = protocol.random_configuration(rng)
        system = TransitionSystem(protocol, MutualExclusionSpec(protocol), "central")
        pairs = system.successor_configurations(configuration)
        enabled = protocol.enabled_vertices(configuration)
        assert {selection for selection, _ in pairs} == {
            frozenset({v}) for v in enabled
        }
        for selection, successor in pairs:
            expected, _ = protocol.apply(configuration, selection)
            assert successor == expected

    def test_terminal_configurations_self_loop(self):
        protocol = CountdownProtocol(path_graph(3))
        terminal = protocol.configuration({v: 0 for v in protocol.graph.vertices})
        system = TransitionSystem(protocol, AllZeroSpec(), "central")
        assert system.successor_configurations(terminal) == [(None, terminal)]
        explored = system.explore([terminal])
        key = explored.initial_keys[0]
        assert explored.successors[key] == (key,)
        assert key in explored.terminal_keys

    def test_region_exploration_is_closed(self, rng):
        protocol = DijkstraTokenRing.on_ring(4)
        system = TransitionSystem(protocol, MutualExclusionSpec(protocol), "central")
        explored = system.explore(
            [protocol.random_configuration(rng) for _ in range(3)]
        )
        assert not explored.exhaustive
        for key in explored.keys:
            for successor in explored.successors[key]:
                assert successor in explored.successors

    def test_exploration_cap(self, rng):
        protocol = DijkstraTokenRing.on_ring(5)
        system = TransitionSystem(
            protocol, MutualExclusionSpec(protocol), "central", max_states=10
        )
        with pytest.raises(VerificationError, match="cap"):
            system.explore([protocol.random_configuration(rng)])

    def test_empty_region_is_rejected(self):
        protocol = DijkstraTokenRing.on_ring(3)
        system = TransitionSystem(protocol, MutualExclusionSpec(protocol))
        with pytest.raises(VerificationError, match="empty"):
            system.explore([])


class TestSolver:
    def test_countdown_values_have_the_closed_form(self, rng):
        protocol = CountdownProtocol(path_graph(3))
        specification = AllZeroSpec()
        for daemon_class, value_of in (
            ("synchronous", lambda c: max(c.values())),
            ("central", lambda c: sum(c.values())),
        ):
            result = verify_stabilization(protocol, specification, daemon_class)
            assert result.exhaustive and result.stabilizes
            assert result.legitimate_count == 1  # the all-zero terminal
            for _ in range(20):
                configuration = protocol.random_configuration(rng)
                assert result.value_of(configuration) == value_of(configuration)
            assert result.exact_worst_case == value_of(
                {v: protocol.TOP for v in protocol.graph.vertices}
            )

    def test_unsafe_terminal_diverges(self):
        protocol = CountdownProtocol(path_graph(2))
        result = verify_stabilization(protocol, NeverSafeSpec(), "synchronous")
        assert not result.stabilizes
        assert result.legitimate_count == 0
        assert result.diverging_count == result.state_count
        lasso = result.counterexample
        assert lasso is not None and lasso.violates_safety
        assert len(lasso.cycle) == 1  # the terminal self-loop

    def test_legitimate_set_is_safe_and_closed(self, rng):
        protocol = DijkstraTokenRing.on_ring(4)
        specification = MutualExclusionSpec(protocol)
        system = TransitionSystem(protocol, specification, "distributed").explore_full()
        solution = solve(system)
        assert solution.legitimate
        for key in solution.legitimate:
            assert system.safe[key]
            for successor in system.successors[key]:
                assert successor in solution.legitimate
        # Values satisfy the Bellman equation of the max-player.
        for key in system.keys:
            value = solution.values.get(key)
            if value is None or value == 0:
                continue
            assert value == 1 + max(
                solution.values[s] for s in system.successors[key]
            )

    def test_exhaustive_dijkstra_dominates_sampling(self, rng):
        protocol = DijkstraTokenRing.on_ring(4)
        specification = MutualExclusionSpec(protocol)
        result = verify_stabilization(protocol, specification, "central")
        assert result.exhaustive and result.stabilizes
        initials = [protocol.random_configuration(rng) for _ in range(5)]
        sampled = worst_case_stabilization(
            protocol=protocol,
            daemon_factory=CentralDaemon,
            specification=specification,
            initial_configurations=initials,
            horizon=4 * protocol.graph.n * protocol.K,
            rng=rng,
            runs_per_configuration=3,
        ).max_steps
        assert sampled is not None
        assert result.exact_worst_case >= sampled

    def test_certified_unison_closure_equals_gamma1(self):
        protocol = AsynchronousUnison(ring_graph(4), alpha=2, K=5)
        result = verify_stabilization(
            protocol, AsynchronousUnisonSpec(protocol), "distributed"
        )
        assert result.exhaustive and result.stabilizes
        space = StateSpace(protocol)
        gamma1 = [c for c in space.configurations() if protocol.is_legitimate(c)]
        assert result.legitimate_count == len(gamma1)
        assert all(result.is_certified_legitimate(c) for c in gamma1)

    def test_shorthand_returns_the_value(self):
        protocol = CountdownProtocol(path_graph(2))
        assert (
            exact_worst_case_stabilization(protocol, AllZeroSpec(), "central")
            == 2 * CountdownProtocol.TOP
        )


def _workload(protocol, seed=0, random_count=6):
    from repro.experiments import mutex_workload

    return mutex_workload(protocol, random.Random(seed), random_count=random_count)


class TestSSMEAcceptance:
    """The headline certifications of the issue, on ring(n) for n in {4, 6, 8}."""

    @pytest.mark.parametrize("n", [4, 6, 8])
    def test_exact_synchronous_worst_case_is_the_theorem2_bound(self, n):
        protocol = SSME(ring_graph(n))
        specification = MutualExclusionSpec(protocol)
        workload = _workload(protocol)
        result = verify_stabilization(protocol, specification, "synchronous", workload)
        bound = math.ceil(protocol.diam / 2)
        assert result.stabilizes
        assert result.exact_worst_case == bound
        sampled = worst_case_stabilization(
            protocol=protocol,
            daemon_factory=SynchronousDaemon,
            specification=specification,
            initial_configurations=workload,
            horizon=protocol.K + 4 * protocol.alpha + 16,
            trace="light",
        ).max_steps
        assert sampled is not None
        assert result.exact_worst_case >= sampled

    def test_exact_speculation_gap_on_the_same_instance(self):
        protocol = SSME(ring_graph(4))
        specification = MutualExclusionSpec(protocol)
        workload = _workload(protocol)
        certificate = exact_speculation_gap(
            protocol, specification, "central", "synchronous", workload
        )
        assert certificate.weak.exact_worst_case == 1  # == ceil(diam/2)
        assert certificate.strong.exact_worst_case > certificate.weak.exact_worst_case
        assert certificate.gap_factor > 1.0
        assert certificate.speculation_pays


class TestBrokenVariantsDiverge:
    def _check_lasso_is_a_real_execution(self, protocol, daemon_class, lasso):
        """Replay the lasso transition by transition through the protocol."""
        walk = list(lasso.stem) + list(lasso.cycle) + [lasso.cycle[0]]
        selections = list(lasso.stem_selections) + list(lasso.cycle_selections)
        assert len(selections) == len(walk) - 1
        for configuration, selection, successor in zip(walk, selections, walk[1:]):
            enabled = protocol.enabled_vertices(configuration)
            if not enabled:
                assert selection == frozenset() and successor == configuration
                continue
            assert selection and selection <= enabled
            assert selection in daemon_class_selections(daemon_class, enabled)
            applied, _ = protocol.apply(configuration, selection)
            assert applied == successor

    def test_underparameterized_dijkstra_yields_a_lasso(self):
        protocol = DijkstraTokenRing.on_ring(4, K=2)
        specification = MutualExclusionSpec(protocol)
        result = verify_stabilization(protocol, specification, "central")
        assert not result.stabilizes
        assert result.exact_worst_case is None
        lasso = result.counterexample
        assert lasso is not None
        assert lasso.violates_safety
        assert any(
            not specification.is_safe(c, protocol) for c in lasso.cycle
        )
        self._check_lasso_is_a_real_execution(protocol, "central", lasso)
        # The healthy parameterization of the same ring stabilizes.
        healthy = DijkstraTokenRing.on_ring(4)
        assert verify_stabilization(
            healthy, MutualExclusionSpec(healthy), "central"
        ).stabilizes

    def test_broken_privilege_spacing_yields_a_lasso(self):
        protocol = ParametricClockMutex(path_graph(2), spacing=1)
        specification = MutualExclusionSpec(protocol)
        result = verify_stabilization(protocol, specification, "distributed")
        assert not result.stabilizes
        assert result.legitimate_count == 0
        lasso = result.counterexample
        assert lasso is not None and lasso.violates_safety
        self._check_lasso_is_a_real_execution(protocol, "distributed", lasso)
        # The broken spacing puts double privileges inside Γ₁, so legitimacy
        # no longer certifies safety: Γ₁ is disjoint from the attractor here.
        space = StateSpace(protocol)
        gamma1 = [c for c in space.configurations() if protocol.is_legitimate(c)]
        assert gamma1
        assert not any(result.is_certified_legitimate(c) for c in gamma1)


class TestAdversarialWorkloadHelpers:
    def test_farthest_pairs_are_sorted_by_distance(self):
        protocol = SSME(path_graph(6))
        pairs = farthest_vertex_pairs(protocol, 3)
        distances = [protocol.graph.distance(u, v) for u, v in pairs]
        assert distances == sorted(distances, reverse=True)
        assert distances[0] == protocol.diam

    def test_spliced_delays_produce_distinct_violations(self):
        protocol = SSME(ring_graph(10))  # diam 5 -> latest delay 2, midpoint 1
        configurations = spliced_violation_configurations(protocol)
        assert len(configurations) == 2
        specification = MutualExclusionSpec(protocol)
        result = verify_stabilization(
            protocol, specification, "synchronous", configurations
        )
        assert result.exact_worst_case == math.ceil(protocol.diam / 2)

    def test_extra_pairs_extend_the_workload(self, rng):
        from repro.lowerbound import adversarial_mutex_configurations

        protocol = SSME(ring_graph(8))
        base = adversarial_mutex_configurations(protocol, random.Random(1), random_count=2)
        extended = adversarial_mutex_configurations(
            protocol, random.Random(1), random_count=2, extra_pairs=2
        )
        assert len(extended) == len(base) + 2
        specification = MutualExclusionSpec(protocol)
        # Each planted pair is an immediate double privilege: unsafe now.
        for configuration in extended[3:-1]:
            assert not specification.is_safe(configuration, protocol)


class TestExactSmallNDriver:
    def test_reduced_driver_passes(self):
        from repro.experiments import exact_small_n

        report = exact_small_n.run_experiment(
            ssme_sizes=(4,),
            gap_sizes=(4,),
            dijkstra_sizes=(4,),
            random_configurations_per_graph=3,
        )
        assert report.experiment_id == "E8"
        assert report.passed
        kinds = {row["kind"] for row in report.rows}
        assert {
            "ssme-sd-exact",
            "ssme-exact-gap",
            "dijkstra-exhaustive",
            "unison-closure",
            "broken-dijkstra",
            "broken-spacing-mutex",
        } <= kinds
        for row in report.rows:
            assert row["certified"], row["kind"]
